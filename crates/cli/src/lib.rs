//! Command-line front end for the `sttlock` flow.
//!
//! ```text
//! sttlock-cli gen      --profile s1196 --seed 1 -o design.bench
//! sttlock-cli optimize -i design.bench -o design_opt.bench
//! sttlock-cli lock     -i design_opt.bench --algorithm para --seed 42 \
//!                      -o hybrid.bench --bitstream design.key [--redact] [--harden]
//! sttlock-cli report   -i hybrid.bench
//! sttlock-cli program  -i foundry.bench --bitstream design.key -o part.bench
//! sttlock-cli convert  -i hybrid.bench -o hybrid.v
//! sttlock-cli equiv    -a design.bench -b part.bench
//! sttlock-cli attack   -i foundry.bench --oracle part.bench --mode sens|sat|seq
//! sttlock-cli campaign --circuits s27,s298 --seeds 1,2 --cache .campaign \
//!                      --out runs.jsonl --table all
//! sttlock-cli cluster coordinate --listen 127.0.0.1:7879 --min-workers 2 \
//!                      --journal dispatch.log --out runs.jsonl
//! sttlock-cli cluster work --join 127.0.0.1:7879
//! ```
//!
//! Netlist files are selected by extension: `.bench` (ISCAS '89) or
//! `.v`/`.verilog` (the structural subset). The library is the built-in
//! calibrated 90 nm model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::sat_attack::{self, SatAttackConfig, SequentialAttackConfig};
use sttlock_attack::sensitization::{self, SensitizationConfig};
use sttlock_benchgen::{profiles, Profile};
use sttlock_campaign::{render, AttackKind, CampaignSpec, CircuitSpec, SelectionOverrides};
use sttlock_core::harden::{harden, HardenConfig};
use sttlock_core::{verify_and_repair, Flow, RepairConfig, SelectionAlgorithm};
use sttlock_fault::{FaultInjector, FaultModel};
use sttlock_netlist::{bench_format, verilog, HybridOverlay, Netlist, NetlistError};
use sttlock_opt::optimize;
use sttlock_power::{analyze_area, analyze_power};
use sttlock_sat::equiv::{check_equivalence, EquivResult};
use sttlock_sim::activity::estimate_activity;
use sttlock_sta::analyze;
use sttlock_techlib::Library;

/// Errors surfaced to the user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line; the message explains the expected usage.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// Underlying message.
        message: String,
    },
    /// A netlist failed to parse or validate.
    Netlist(NetlistError),
    /// A bitstream file was malformed.
    Bitstream {
        /// 1-based line.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// A flow, attack or analysis step failed.
    Step(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io { path, message } => write!(f, "io error on `{path}`: {message}"),
            CliError::Netlist(e) => write!(f, "netlist error: {e}"),
            CliError::Bitstream { line, message } => {
                write!(f, "bitstream error on line {line}: {message}")
            }
            CliError::Step(m) => write!(f, "{m}"),
        }
    }
}

impl Error for CliError {}

impl From<NetlistError> for CliError {
    fn from(e: NetlistError) -> Self {
        CliError::Netlist(e)
    }
}

/// Minimal flag parser: `--flag value`, `-x value`, plus boolean flags.
struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String], boolean_flags: &[&str]) -> Result<Args, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            if !flag.starts_with('-') {
                return Err(CliError::Usage(format!("unexpected token `{flag}`")));
            }
            let key = flag.trim_start_matches('-').to_owned();
            if boolean_flags.contains(&key.as_str()) {
                pairs.push((key, None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("`{flag}` needs a value")))?;
                pairs.push((key, Some(value.clone())));
            }
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag `--{key}`")))
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("`--{key}` expects an integer, got `{v}`"))),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("`--{key}` expects a number, got `{v}`"))),
        }
    }
}

/// Loads a netlist, choosing the parser by file extension.
///
/// # Errors
///
/// I/O failures, unknown extensions and parse errors.
pub fn load_netlist(path: &str) -> Result<Netlist, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let p = Path::new(path);
    let stem = p
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_owned();
    match p.extension().and_then(|e| e.to_str()) {
        Some("bench") => Ok(bench_format::parse(&text, &stem)?),
        Some("v") | Some("verilog") => Ok(verilog::parse(&text)?),
        other => Err(CliError::Usage(format!(
            "unknown netlist extension `{}` (use .bench or .v)",
            other.unwrap_or("")
        ))),
    }
}

/// Saves a netlist, choosing the writer by file extension.
///
/// # Errors
///
/// I/O failures and unknown extensions.
pub fn save_netlist(path: &str, netlist: &Netlist) -> Result<(), CliError> {
    let text = match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("bench") => bench_format::write(netlist),
        Some("v") | Some("verilog") => verilog::write(netlist),
        other => {
            return Err(CliError::Usage(format!(
                "unknown netlist extension `{}` (use .bench or .v)",
                other.unwrap_or("")
            )))
        }
    };
    write_artifact(path, text)
}

/// Writes a user-visible artifact atomically (sibling temp file +
/// fsync + rename via the store): a Ctrl-C or crash mid-write leaves
/// the previous file intact, never a truncated one.
fn write_artifact(path: &str, bytes: impl AsRef<[u8]>) -> Result<(), CliError> {
    sttlock_store::write_atomic(path, bytes).map_err(|e| CliError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })
}

const HELP: &str = "\
sttlock-cli — hybrid STT-CMOS design-for-assurance flow

commands:
  gen      --profile <name>|--gates N --dffs N --inputs N --outputs N
           [--seed N] -o <file>            generate a benchmark circuit
  optimize -i <file> -o <file>             constant folding/strash/sweep
  lock     -i <file> --algorithm indep|dep|para [--seed N] [--harden]
           [--redact] [--library <file>] -o <file> [--bitstream <file>]
                                           run the selection flow
  program  -i <file> --bitstream <file> -o <file>
                                           program a redacted netlist
  report   -i <file> [--library <file>]    stats, timing, power, security
  library  -o <file>                       export the built-in library
  convert  -i <file> -o <file>             .bench <-> .v
  equiv    -a <file> -b <file>             SAT equivalence check
  attack   -i <redacted> --oracle <file> --mode sens|sat|seq [--frames N]
                                           run an attack
  faults   -i <programmed.bench>|--profile <name> [--algorithm indep|dep|para]
           [--seed N] [--write-p P] [--retention-p P] [--stuck0-p P]
           [--stuck1-p P] [--cmos-p P] [--retries N] [--batches N]
           [--backoff-ms N] [--max-backoff-ms N] [--no-sat-proof]
           [--trace <file.jsonl>] [--trace-summary]
                                           inject STT faults, then verify
                                           and repair the programmed part
  campaign [--circuits all|<n1,n2,..>] [--max-gates N]
           [--algorithms indep,dep,para] [--seeds N,N,..]
           [--attacks none,sens,sat,seq] [--frames N] [--max-dips N]
           [--indep-gates N,N,..] [--paths N,N,..] [--fault-p P,P,..]
           [--jobs N] [--timeout-secs N] [--cache <dir>] [--out <file.jsonl>]
           [--journal <file.jsonl>] [--resume]
           [--table table1|table2|fig3|attacks|faults|all|none]
           [--inject-panic] [--inject-timeout]
           [--trace <file.jsonl>] [--trace-summary]
                                           run a parallel experiment grid
  cluster coordinate [--listen HOST:PORT] [--min-workers N]
           [--heartbeat-timeout-ms N] [--dispatch-margin-secs N]
           [--run-timeout-secs N] [--journal <file>] [--resume]
           + the campaign grid flags     shard a campaign across the
                                         registered workers and merge
                                         the records in grid order;
                                         also fans POST /v1/harden out
                                         to the least-loaded worker
  cluster work --join HOST:PORT [--listen HOST:PORT]
           [--advertise HOST:PORT] [--id NAME] [--cache-dir <dir>]
           [--heartbeat-ms N] [--request-timeout-ms N]
                                         join a coordinator and execute
                                         the cells it dispatches
  serve    [--addr HOST:PORT] [--workers N] [--queue-depth N]
           [--request-timeout-ms N] [--cache-dir <dir>]
           [--max-body-bytes N] [--debug-endpoints]
           [--trace <file.jsonl>]
                                           run the HTTP harden/attack
                                           service (POST /v1/harden,
                                           POST /v1/attack, GET /healthz,
                                           GET /metrics; stop with
                                           POST /admin/shutdown, a
                                           `quit` line on stdin, or
                                           Ctrl-D at a terminal)
  help                                     this text

netlist files: .bench (ISCAS'89) or .v (structural subset)
library files: the sttlock text format (see `library` to export a template)
";

/// Loads the technology library requested by `--library`, or the
/// built-in calibrated 90 nm model.
fn load_library(args: &Args) -> Result<Library, CliError> {
    match args.get("library") {
        None => Ok(Library::predictive_90nm()),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| CliError::Io {
                path: path.to_owned(),
                message: e.to_string(),
            })?;
            sttlock_techlib::textfmt::parse_library(&text)
                .map_err(|e| CliError::Step(format!("bad library `{path}`: {e}")))
        }
    }
}

/// Entry point shared by the binary and the tests: executes one command
/// and returns the text to print.
///
/// # Errors
///
/// Every user-visible failure is a [`CliError`].
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Ok(HELP.to_owned());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        "gen" => cmd_gen(rest),
        "library" => cmd_library(rest),
        "optimize" => cmd_optimize(rest),
        "lock" => cmd_lock(rest),
        "program" => cmd_program(rest),
        "report" => cmd_report(rest),
        "convert" => cmd_convert(rest),
        "equiv" => cmd_equiv(rest),
        "attack" => cmd_attack(rest),
        "faults" => cmd_faults(rest),
        "campaign" => cmd_campaign(rest),
        "cluster" => cmd_cluster(rest),
        "serve" => cmd_serve(rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `sttlock-cli help`)"
        ))),
    }
}

fn cmd_gen(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let seed = args.get_u64("seed", 42)?;
    let profile = if let Some(name) = args.get("profile") {
        profiles::by_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown profile `{name}`; known: {}",
                profiles::ALL.map(|p| p.name).join(", ")
            ))
        })?
    } else {
        let gates = args.get_u64("gates", 0)? as usize;
        if gates == 0 {
            return Err(CliError::Usage(
                "gen needs `--profile <name>` or `--gates N [--dffs N --inputs N --outputs N]`"
                    .into(),
            ));
        }
        Profile::custom(
            "custom",
            gates,
            args.get_u64("dffs", 8)? as usize,
            args.get_u64("inputs", 8)? as usize,
            args.get_u64("outputs", 8)? as usize,
        )
    };
    let out = args.require("o")?;
    let netlist = profile.generate(&mut StdRng::seed_from_u64(seed));
    save_netlist(out, &netlist)?;
    Ok(format!("wrote {netlist} to {out}\n"))
}

fn cmd_optimize(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let input = args.require("i")?;
    let output = args.require("o")?;
    let netlist = load_netlist(input)?;
    let (optimized, report) = optimize(&netlist)?;
    save_netlist(output, &optimized)?;
    Ok(format!(
        "optimized {input}: {} -> {} gates (folded {}, shared {}, collapsed {}, swept {})\n",
        netlist.gate_count(),
        optimized.gate_count(),
        report.folded,
        report.shared,
        report.collapsed,
        report.swept
    ))
}

fn parse_algorithm(s: &str) -> Result<SelectionAlgorithm, CliError> {
    s.parse().map_err(CliError::Usage)
}

fn cmd_lock(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &["redact", "harden"])?;
    let input = args.require("i")?;
    let output = args.require("o")?;
    let algorithm = parse_algorithm(args.require("algorithm")?)?;
    let seed = args.get_u64("seed", 42)?;

    let netlist = load_netlist(input)?;
    let flow = Flow::new(load_library(&args)?);
    let mut outcome = flow
        .run(&netlist, algorithm, seed)
        .map_err(|e| CliError::Step(format!("flow failed: {e}")))?;

    let mut harden_note = String::new();
    if args.has("harden") {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4A4D);
        let hr = harden(&mut outcome.hybrid, &HardenConfig::default(), &mut rng)
            .map_err(|e| CliError::Step(format!("hardening failed: {e}")))?;
        harden_note = format!(
            ", hardened (+{} decoys, {} absorbed)",
            hr.decoys_added, hr.gates_absorbed
        );
    }
    // Hardening may rewrite configs; re-derive the secret from the final
    // hybrid so the key file always matches the written netlist.
    let (foundry, secret) = outcome.hybrid.redact();

    if let Some(bits_path) = args.get("bitstream") {
        write_artifact(bits_path, bitstream::write(&outcome.hybrid, &secret))?;
    }
    let written = if args.has("redact") {
        &foundry
    } else {
        &outcome.hybrid
    };
    save_netlist(output, written)?;

    Ok(format!(
        "locked {input} with {algorithm}: {} LUTs{harden_note}\n{}\nwrote {} view to {output}\n",
        secret.len(),
        outcome.report,
        if args.has("redact") {
            "foundry (redacted)"
        } else {
            "programmed"
        },
    ))
}

fn cmd_program(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let input = args.require("i")?;
    let output = args.require("o")?;
    let bits_path = args.require("bitstream")?;
    let mut netlist = load_netlist(input)?;
    let text = fs::read_to_string(bits_path).map_err(|e| CliError::Io {
        path: bits_path.to_owned(),
        message: e.to_string(),
    })?;
    let bits = bitstream::parse(&netlist, &text)?;
    netlist.program(&bits);
    save_netlist(output, &netlist)?;
    Ok(format!("programmed {} LUTs into {output}\n", bits.len()))
}

fn cmd_report(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let input = args.require("i")?;
    let netlist = load_netlist(input)?;
    let lib = load_library(&args)?;
    let stats = netlist.stats();
    let timing = analyze(&netlist, &lib);
    let area = analyze_area(&netlist, &lib);

    let mut out = String::new();
    out.push_str(&format!("design    : {netlist}\n"));
    out.push_str(&format!(
        "interface : {} inputs, {} outputs, {} flip-flops\n",
        stats.inputs, stats.outputs, stats.dffs
    ));
    out.push_str(&format!(
        "timing    : min clock period {:.3} ns ({:.1} MHz)\n",
        timing.clock_period_ns(),
        1000.0 / timing.clock_period_ns().max(1e-9)
    ));
    out.push_str(&format!("area      : {area:.1} um^2\n"));

    // Power needs a programmed design; redacted netlists get the static
    // estimate instead (probabilities treat missing gates as balanced).
    let redacted = netlist
        .node_ids()
        .any(|id| netlist.node(id).is_lut() && netlist.lut_config(id).is_none());
    if redacted {
        let prob = sttlock_sim::probability::signal_probabilities(&netlist);
        let p = sttlock_power::analyze_power_static(&netlist, &lib, &prob);
        out.push_str(&format!(
            "power     : {:.1} uW total (static estimate; redacted netlist)\n",
            p.total_uw()
        ));
    } else {
        let mut rng = StdRng::seed_from_u64(7);
        let act = estimate_activity(&netlist, 256, &mut rng)
            .map_err(|e| CliError::Step(format!("simulation failed: {e}")))?;
        let p = analyze_power(&netlist, &lib, &act);
        out.push_str(&format!("power     : {:.1} uW total\n", p.total_uw()));
    }

    if netlist.lut_count() > 0 {
        let est = sttlock_attack::estimate::security_estimate(&netlist);
        out.push_str(&format!(
            "security  : {} LUTs | N_indep {} | N_dep {} | N_bf {} ({:.1e} years at 1e9/s)\n",
            netlist.lut_count(),
            est.n_indep,
            est.n_dep,
            est.n_bf,
            est.n_bf.years_at(1e9)
        ));
    }
    Ok(out)
}

fn cmd_library(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let out = args.require("o")?;
    let text = sttlock_techlib::textfmt::write_library(&Library::predictive_90nm());
    write_artifact(out, text)?;
    Ok(format!(
        "exported the built-in calibrated 90nm library to {out}\n"
    ))
}

fn cmd_convert(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let input = args.require("i")?;
    let output = args.require("o")?;
    let netlist = load_netlist(input)?;
    save_netlist(output, &netlist)?;
    Ok(format!("converted {input} -> {output}\n"))
}

fn cmd_equiv(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let a = load_netlist(args.require("a")?)?;
    let b = load_netlist(args.require("b")?)?;
    match check_equivalence(&a, &b).map_err(|e| CliError::Step(e.to_string()))? {
        EquivResult::Equivalent => Ok("EQUIVALENT (proven for all frames)\n".to_owned()),
        EquivResult::Different { inputs, state } => Ok(format!(
            "DIFFERENT — witness frame: inputs {:?}, state {:?}\n",
            inputs, state
        )),
    }
}

fn cmd_attack(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let redacted = load_netlist(args.require("i")?)?;
    let oracle = load_netlist(args.require("oracle")?)?;
    let mode = args.require("mode")?;
    let seed = args.get_u64("seed", 42)?;
    match mode {
        "sens" => {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sensitization::run(
                &redacted,
                &oracle,
                &SensitizationConfig::default(),
                &mut rng,
            )
            .map_err(|e| CliError::Step(format!("attack failed: {e}")))?;
            Ok(format!(
                "sensitization: {} ({}% of rows), {} test clocks, {} SAT queries\n",
                if out.is_full_break() {
                    "FULL BREAK"
                } else {
                    "stalled"
                },
                (out.resolution_ratio() * 100.0).round(),
                out.test_clocks,
                out.sat_queries
            ))
        }
        "sat" => {
            let out = sat_attack::run(&redacted, &oracle, &SatAttackConfig::default())
                .map_err(|e| CliError::Step(format!("attack failed: {e}")))?;
            Ok(format!(
                "sat attack (full scan): {}, {} DIPs, {} conflicts\n",
                if out.succeeded() {
                    "KEY RECOVERED"
                } else {
                    "dip limit hit"
                },
                out.dips,
                out.solver_stats.conflicts
            ))
        }
        "seq" => {
            let frames = args.get_u64("frames", 8)? as usize;
            let cfg = SequentialAttackConfig {
                frames,
                max_dips: 10_000,
            };
            let out = sat_attack::run_sequential(&redacted, &oracle, &cfg)
                .map_err(|e| CliError::Step(format!("attack failed: {e}")))?;
            Ok(format!(
                "sat attack (no scan, {} frames): {}, {} DIP sequences, {} conflicts\n",
                out.frames,
                if out.bitstream.is_some() {
                    "KEY RECOVERED (bounded)"
                } else {
                    "dip limit hit"
                },
                out.dips,
                out.solver_stats.conflicts
            ))
        }
        other => Err(CliError::Usage(format!(
            "unknown attack mode `{other}` (sens|sat|seq)"
        ))),
    }
}

/// Wires `--trace <file.jsonl>` / `--trace-summary` into a subcommand:
/// installs a recording collector before the work runs and, on
/// [`Trace::finish`], writes the JSONL export and/or appends the text
/// summary to the command output. Dropping the guard (on any early
/// error return) restores the zero-cost no-op collector.
struct Trace {
    collector: std::sync::Arc<sttlock_obs::TraceCollector>,
    path: Option<String>,
    summary: bool,
}

impl Trace {
    fn start(args: &Args) -> Option<Trace> {
        let path = args.get("trace").map(str::to_owned);
        let summary = args.has("trace-summary");
        if path.is_none() && !summary {
            return None;
        }
        let collector = sttlock_obs::TraceCollector::new();
        sttlock_obs::install(collector.clone());
        Some(Trace {
            collector,
            path,
            summary,
        })
    }

    fn finish(self, out: &mut String) -> Result<(), CliError> {
        sttlock_obs::uninstall();
        if let Some(path) = &self.path {
            // Atomic: a kill between here and process exit must never
            // leave a half-written trace for tooling to choke on.
            write_artifact(path, self.collector.to_jsonl())?;
        }
        if self.summary {
            out.push('\n');
            out.push_str(&self.collector.summary());
        }
        Ok(())
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        // Idempotent with the `finish` call; covers early `?` returns
        // so a failed command never leaks an installed collector.
        sttlock_obs::uninstall();
    }
}

fn cmd_faults(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &["no-sat-proof", "trace-summary"])?;
    let trace = Trace::start(&args);
    let seed = args.get_u64("seed", 42)?;
    let model = FaultModel {
        write_failure_p: args.get_f64("write-p", 0.0)?,
        retention_flip_p: args.get_f64("retention-p", 0.0)?,
        stuck_at_zero_p: args.get_f64("stuck0-p", 0.0)?,
        stuck_at_one_p: args.get_f64("stuck1-p", 0.0)?,
        cmos_stuck_p: args.get_f64("cmos-p", 0.0)?,
    };
    let cfg = RepairConfig {
        random_batches: args.get_u64("batches", 8)? as usize,
        max_retries: args.get_u64("retries", 5)? as usize,
        backoff_base: std::time::Duration::from_millis(args.get_u64("backoff-ms", 0)?),
        max_backoff: std::time::Duration::from_millis(args.get_u64("max-backoff-ms", 60_000)?),
        sat_proof: !args.has("no-sat-proof"),
    };

    // The golden model, the fabricated device, and its intended
    // bitstream — either from a programmed netlist on disk or from a
    // fresh gen + lock of a named profile.
    let (golden, mut device, bitstream, label) = if let Some(input) = args.get("i") {
        let netlist = load_netlist(input)?;
        if netlist.lut_count() == 0 {
            return Err(CliError::Step(format!(
                "`{input}` has no LUTs — lock the design first (see `lock`)"
            )));
        }
        let redacted = netlist
            .node_ids()
            .any(|id| netlist.node(id).is_lut() && netlist.lut_config(id).is_none());
        if redacted {
            return Err(CliError::Step(format!(
                "`{input}` is a redacted foundry view — program it first (see `program`)"
            )));
        }
        let device = HybridOverlay::new(std::sync::Arc::new(netlist.clone()));
        let bitstream = device.bitstream();
        (netlist, device, bitstream, input.to_owned())
    } else if let Some(name) = args.get("profile") {
        let profile = profiles::by_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown profile `{name}`; known: {}",
                profiles::ALL.map(|p| p.name).join(", ")
            ))
        })?;
        let algorithm = parse_algorithm(args.get("algorithm").unwrap_or("para"))?;
        let netlist = profile.generate(&mut StdRng::seed_from_u64(seed));
        let flow = Flow::new(load_library(&args)?);
        let outcome = flow
            .run(&netlist, algorithm, seed)
            .map_err(|e| CliError::Step(format!("flow failed: {e}")))?;
        let label = format!("{name} ({algorithm}, seed {seed})");
        (netlist, outcome.overlay, outcome.bitstream, label)
    } else {
        return Err(CliError::Usage(
            "faults needs `-i <programmed netlist>` or `--profile <name>`".into(),
        ));
    };

    let mut injector = FaultInjector::new(model, seed ^ 0xFA17_5EED);
    let injected = injector.corrupt(&mut device);
    let mut out = format!(
        "injected {} fault(s) into {label} (model {model}):\n",
        injected.len()
    );
    for f in &injected {
        out.push_str(&format!("  {f}\n"));
    }
    if injected.is_empty() {
        out.push_str("  (none — the device came out of fabrication clean)\n");
    }

    let report = verify_and_repair(&golden, &mut device, &bitstream, &mut injector, &cfg, seed)
        .map_err(|e| CliError::Step(format!("verify/repair failed: {e}")))?;
    out.push_str(&format!(
        "verify+repair: {} after {} retry round(s)\n",
        report.verdict, report.retries
    ));
    out.push_str(&format!(
        "  {} test vectors, {} LUT re-writes, mismatching points {} -> {}\n",
        report.vectors_run,
        report.reprogram_attempts,
        report.initial_mismatches,
        report.residual_mismatches
    ));
    if !report.repaired_luts.is_empty() {
        out.push_str(&format!(
            "  repaired LUTs: {}\n",
            report.repaired_luts.join(", ")
        ));
    }
    if !report.failed_luts.is_empty() {
        out.push_str(&format!(
            "  failed LUTs  : {}\n",
            report.failed_luts.join(", ")
        ));
    }

    let p = model.row_fault_p();
    if p > 0.0 {
        // Estimate on the hybrid (the netlist that carries the LUTs) —
        // in the `--profile` branch `golden` is the pure-CMOS original.
        let hybrid = device.materialize();
        let baseline = sttlock_attack::estimate::security_estimate(&hybrid);
        let faulted = sttlock_attack::estimate::security_under_faults(&hybrid, p);
        out.push_str(&format!(
            "security under faults (row p = {p:.4}): N_bf {} (fault-free {})\n",
            faulted.n_bf, baseline.n_bf
        ));
    }
    if let Some(trace) = trace {
        trace.finish(&mut out)?;
    }
    Ok(out)
}

fn parse_list<T>(
    text: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, CliError>,
) -> Result<Vec<T>, CliError> {
    let items: Result<Vec<T>, CliError> = text
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(CliError::Usage(format!(
            "`--{what}` needs at least one item"
        )));
    }
    Ok(items)
}

/// Parses one `--circuits` item: a profile name (`s27`), or a custom
/// spec `name:gates:dffs:inputs:outputs` for ad-hoc smoke grids.
fn parse_circuit(item: &str) -> Result<CircuitSpec, CliError> {
    if !item.contains(':') {
        return if profiles::by_name(item).is_some() {
            Ok(CircuitSpec::Profile(item.to_owned()))
        } else {
            Err(CliError::Usage(format!(
                "unknown profile `{item}`; known: {} (or name:gates:dffs:inputs:outputs)",
                profiles::ALL.map(|p| p.name).join(", ")
            )))
        };
    }
    let parts: Vec<&str> = item.split(':').collect();
    let bad = || {
        CliError::Usage(format!(
            "bad custom circuit `{item}` (want name:gates:dffs:inputs:outputs)"
        ))
    };
    if parts.len() != 5 || parts[0].is_empty() {
        return Err(bad());
    }
    let num = |s: &str| s.parse::<usize>().map_err(|_| bad());
    Ok(CircuitSpec::Custom {
        name: parts[0].to_owned(),
        gates: num(parts[1])?,
        dffs: num(parts[2])?,
        inputs: num(parts[3])?,
        outputs: num(parts[4])?,
    })
}

/// Parses the campaign grid flags shared by `campaign` and
/// `cluster coordinate` — circuits, algorithms, seeds, attacks, the
/// override/fault axes and the execution knobs — into a spec.
fn parse_campaign_spec(args: &Args) -> Result<CampaignSpec, CliError> {
    let max_gates = args.get_u64("max-gates", u64::MAX)? as usize;

    let mut circuits = match args.get("circuits") {
        None | Some("all") => profiles::up_to(max_gates)
            .iter()
            .map(|p| CircuitSpec::Profile(p.name.to_owned()))
            .collect(),
        Some(list) => parse_list(list, "circuits", parse_circuit)?,
    };
    if args.has("inject-panic") {
        circuits.push(CircuitSpec::InjectPanic);
    }
    if args.has("inject-timeout") {
        circuits.push(CircuitSpec::InjectTimeout);
    }

    let algorithms = match args.get("algorithms") {
        None => SelectionAlgorithm::ALL.to_vec(),
        Some(list) => parse_list(list, "algorithms", parse_algorithm)?,
    };
    let seeds = match args.get("seeds") {
        None => vec![42],
        Some(list) => parse_list(list, "seeds", |s| {
            s.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("`--seeds` expects integers, got `{s}`")))
        })?,
    };
    let frames = args.get_u64("frames", 8)? as usize;
    let max_dips = args.get_u64("max-dips", 10_000)? as usize;
    let attacks = match args.get("attacks") {
        None => vec![AttackKind::None],
        Some(list) => parse_list(list, "attacks", |s| match s {
            "none" => Ok(AttackKind::None),
            "sens" => Ok(AttackKind::Sensitization),
            "sat" => Ok(AttackKind::Sat { max_dips }),
            "seq" => Ok(AttackKind::SequentialSat { frames, max_dips }),
            other => Err(CliError::Usage(format!(
                "unknown attack `{other}` (none|sens|sat|seq)"
            ))),
        })?,
    };

    // The selection-override axis: `--indep-gates` / `--paths` lists
    // are crossed into the grid (ablation sweeps from the CLI).
    let parse_usizes = |key: &'static str| -> Result<Option<Vec<usize>>, CliError> {
        args.get(key)
            .map(|list| {
                parse_list(list, key, |s| {
                    s.parse::<usize>().map_err(|_| {
                        CliError::Usage(format!("`--{key}` expects integers, got `{s}`"))
                    })
                })
            })
            .transpose()
    };
    let indep_gates = parse_usizes("indep-gates")?;
    let paths = parse_usizes("paths")?;
    let mut overrides = Vec::new();
    for &g in indep_gates.as_deref().unwrap_or(&[]) {
        match paths.as_deref() {
            None | Some([]) => overrides.push(SelectionOverrides {
                independent_gates: Some(g),
                ..SelectionOverrides::default()
            }),
            Some(ps) => {
                for &p in ps {
                    overrides.push(SelectionOverrides {
                        independent_gates: Some(g),
                        parametric_paths: Some(p),
                    });
                }
            }
        }
    }
    if indep_gates.is_none() {
        for &p in paths.as_deref().unwrap_or(&[]) {
            overrides.push(SelectionOverrides {
                parametric_paths: Some(p),
                ..SelectionOverrides::default()
            });
        }
    }
    if overrides.is_empty() {
        overrides.push(SelectionOverrides::default());
    }

    // The robustness axis: `--fault-p` write-failure probabilities are
    // crossed into the grid; each fault cell corrupts the programmed
    // part and runs the verify-and-repair loop.
    let faults = match args.get("fault-p") {
        None => vec![FaultModel::default()],
        Some(list) => parse_list(list, "fault-p", |s| {
            s.parse::<f64>()
                .map(FaultModel::write_failures)
                .map_err(|_| CliError::Usage(format!("`--fault-p` expects numbers, got `{s}`")))
        })?,
    };

    if args.has("resume") && args.get("journal").is_none() {
        return Err(CliError::Usage(
            "`--resume` needs `--journal <file.jsonl>` to replay from".into(),
        ));
    }
    // `--jobs 0` is never what the user meant: the spec treats 0 as
    // "auto", but asking for zero workers explicitly deserves a clear
    // rejection, not a silent reinterpretation.
    let jobs = args.get_u64("jobs", 0)? as usize;
    if args.get("jobs").is_some() && jobs == 0 {
        return Err(CliError::Usage(
            "`--jobs` expects at least 1 worker thread (omit the flag for auto)".into(),
        ));
    }

    Ok(CampaignSpec {
        circuits,
        algorithms,
        seeds,
        attacks,
        overrides,
        faults,
        timeout: std::time::Duration::from_secs(args.get_u64("timeout-secs", 600)?),
        jobs,
        cache_dir: args.get("cache").map(std::path::PathBuf::from),
        journal: args.get("journal").map(std::path::PathBuf::from),
        resume: args.has("resume"),
    })
}

/// Validates `--table`, returning the requested rendering.
fn parse_table(args: &Args) -> Result<&str, CliError> {
    let table = args.get("table").unwrap_or("all");
    if ![
        "none", "table1", "table2", "fig3", "attacks", "faults", "all",
    ]
    .contains(&table)
    {
        return Err(CliError::Usage(format!(
            "unknown table `{table}` (table1|table2|fig3|attacks|faults|all|none)"
        )));
    }
    Ok(table)
}

fn cmd_campaign(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(
        argv,
        &["inject-panic", "inject-timeout", "resume", "trace-summary"],
    )?;
    let spec = parse_campaign_spec(&args)?;
    let table = parse_table(&args)?;

    let trace = Trace::start(&args);
    let result = sttlock_campaign::execute(&spec);
    if let Some(path) = args.get("out") {
        write_artifact(path, result.to_jsonl())?;
    }
    let mut out = campaign_report(table, &spec, &result);
    if let Some(trace) = trace {
        trace.finish(&mut out)?;
    }
    Ok(out)
}

/// Renders the requested tables plus the run summary — shared by the
/// single-node `campaign` command and `cluster coordinate`.
fn campaign_report(
    table: &str,
    spec: &CampaignSpec,
    result: &sttlock_campaign::CampaignResult,
) -> String {
    let seed = spec.seeds[0];
    let has_attacks = spec.attacks.iter().any(|a| *a != AttackKind::None)
        || spec.circuits.iter().any(CircuitSpec::is_injected);
    let has_faults = spec.faults.iter().any(|f| !f.is_noop());
    let mut out = String::new();
    match table {
        "none" => {}
        "table1" => out.push_str(&render::render_table1(&result.records, seed)),
        "table2" => out.push_str(&render::render_table2(&result.records, seed)),
        "fig3" => out.push_str(&render::render_fig3(&result.records, seed)),
        "attacks" => out.push_str(&render::render_attacks(&result.records)),
        "faults" => out.push_str(&render::render_faults(&result.records)),
        _ => {
            out.push_str(&render::render_table1(&result.records, seed));
            out.push('\n');
            out.push_str(&render::render_table2(&result.records, seed));
            out.push('\n');
            out.push_str(&render::render_fig3(&result.records, seed));
            if has_attacks {
                out.push('\n');
                out.push_str(&render::render_attacks(&result.records));
            }
            if has_faults {
                out.push('\n');
                out.push_str(&render::render_faults(&result.records));
            }
        }
    }

    let total = result.records.len();
    let ok = result.ok_count();
    let timed_out = result
        .records
        .iter()
        .filter(|r| matches!(r.status, sttlock_campaign::RunStatus::TimedOut))
        .count();
    let failed = total - ok - timed_out;
    if let Some(recovery) = &result.journal_recovery {
        if !recovery.is_clean() {
            // Surface what the store healed: a crashed predecessor's
            // torn tail shows up here instead of vanishing silently.
            out.push_str(&format!("\njournal recovery: {}\n", recovery.summary()));
        }
    }
    out.push_str(&format!(
        "\ncampaign: {total} runs ({ok} ok, {failed} failed, {timed_out} timed out, {} cached) in {:.1}s\n",
        result.cache_hits(),
        result.wall.as_secs_f64(),
    ));
    out
}

fn cmd_cluster(argv: &[String]) -> Result<String, CliError> {
    match argv.first().map(String::as_str) {
        Some("coordinate") => cmd_cluster_coordinate(&argv[1..]),
        Some("work") => cmd_cluster_work(&argv[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown cluster subcommand `{other}` (coordinate|work)"
        ))),
        None => Err(CliError::Usage(
            "cluster needs a subcommand: coordinate|work".into(),
        )),
    }
}

fn cmd_cluster_coordinate(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(
        argv,
        &["inject-panic", "inject-timeout", "resume", "trace-summary"],
    )?;
    let mut spec = parse_campaign_spec(&args)?;
    let table = parse_table(&args)?;
    // `--journal` here is the coordinator's dispatch journal (it
    // records dispatches and completions for crash resume). Cells
    // execute on the workers, so the single-node campaign journal and
    // cache have no role in this process.
    spec.journal = None;
    spec.resume = false;
    spec.cache_dir = None;

    let cfg = sttlock_cluster::CoordinatorConfig {
        listen: args.get("listen").unwrap_or("127.0.0.1:7879").to_owned(),
        min_workers: args.get_u64("min-workers", 1)?.max(1) as usize,
        heartbeat_timeout: std::time::Duration::from_millis(
            args.get_u64("heartbeat-timeout-ms", 5_000)?,
        ),
        dispatch_margin: std::time::Duration::from_secs(args.get_u64("dispatch-margin-secs", 30)?),
        journal: args.get("journal").map(Into::into),
        resume: args.has("resume"),
        trace_path: args.get("trace").map(Into::into),
        ..sttlock_cluster::CoordinatorConfig::default()
    };
    let min_workers = cfg.min_workers;
    let coordinator = sttlock_cluster::start_coordinator(cfg)
        .map_err(|e| CliError::Step(format!("cannot start coordinator: {e}")))?;
    eprintln!(
        "sttlock coordinator listening on {addr} (waiting for {min_workers} worker(s); \
         join with `sttlock-cli cluster work --join {addr}`)",
        addr = coordinator.addr(),
    );

    // An explicit wall bound on the whole distributed run; 0 (the
    // default) trusts the per-cell timeouts and worker liveness.
    let budget = match args.get_u64("run-timeout-secs", 0)? {
        0 => sttlock_exec::Budget::unbounded(),
        secs => sttlock_exec::Budget::with_timeout(std::time::Duration::from_secs(secs)),
    };
    let result = coordinator.run_campaign(&spec, &budget);
    if let Some(path) = args.get("out") {
        write_artifact(path, result.to_jsonl())?;
    }
    let mut out = campaign_report(table, &spec, &result);
    let digest = coordinator.shutdown();
    out.push_str(&format!("\ncluster coordinator drained: {digest}\n"));
    Ok(out)
}

fn cmd_cluster_work(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &[])?;
    let join = args.require("join")?.to_owned();
    let cfg = sttlock_cluster::WorkerConfig {
        coordinator: join.clone(),
        listen: args.get("listen").unwrap_or("127.0.0.1:0").to_owned(),
        advertise: args.get("advertise").map(str::to_owned),
        worker_id: args.get("id").map(str::to_owned),
        cache_dir: args.get("cache-dir").map(Into::into),
        heartbeat: std::time::Duration::from_millis(args.get_u64("heartbeat-ms", 500)?),
        request_timeout: std::time::Duration::from_millis(
            args.get_u64("request-timeout-ms", 600_000)?,
        ),
        install_obs: true,
    };
    let worker = sttlock_cluster::start_worker(cfg)
        .map_err(|e| CliError::Step(format!("cannot start worker: {e}")))?;
    eprintln!(
        "sttlock worker {} serving on {} (coordinator {join}); \
         stop with POST /admin/shutdown or EOF on stdin",
        worker.id(),
        worker.addr(),
    );
    // Same local stop channel as `serve`: stdin doubles as the
    // operator's shutdown signal.
    let stop = worker.stop_handle();
    let interactive = std::io::IsTerminal::is_terminal(&std::io::stdin());
    let watcher = spawn_stdin_watcher(stop, interactive);
    let digest = worker.wait();
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
    Ok(format!("sttlock worker drained cleanly: {digest}\n"))
}

fn cmd_serve(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv, &["debug-endpoints"])?;
    let mut limits = sttlock_serve::http::Limits::default();
    limits.max_body_bytes = args.get_u64("max-body-bytes", limits.max_body_bytes as u64)? as usize;
    let cfg = sttlock_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_owned(),
        workers: args.get_u64("workers", 0)? as usize,
        queue_depth: args.get_u64("queue-depth", 64)? as usize,
        request_timeout: std::time::Duration::from_millis(
            args.get_u64("request-timeout-ms", 10_000)?,
        ),
        cache_dir: args.get("cache-dir").map(Into::into),
        limits,
        debug_endpoints: args.has("debug-endpoints"),
        trace_path: args.get("trace").map(Into::into),
        install_obs: true,
    };
    let queue_depth = cfg.queue_depth;
    let server = sttlock_serve::Server::start(cfg)
        .map_err(|e| CliError::Step(format!("cannot start server: {e}")))?;
    eprintln!(
        "sttlock-serve listening on {} (queue {queue_depth}); stop with POST /admin/shutdown or EOF on stdin",
        server.addr(),
    );
    // No signal handling without libc, so stdin doubles as the local
    // stop channel: a `quit` line always drains, and Ctrl-D does too
    // when stdin is a terminal. EOF on a *non*-terminal stdin is
    // ignored — a supervisor starting the server with `< /dev/null`
    // must not trigger an instant shutdown.
    let stop = server.stop_handle();
    let interactive = std::io::IsTerminal::is_terminal(&std::io::stdin());
    let watcher = spawn_stdin_watcher(stop, interactive);
    let digest = server.wait();
    // The watcher polls the stop token between non-blocking reads, so
    // it exits on its own once the server drains — joining it here
    // means a served-then-shut-down process ends with zero live
    // threads instead of leaking one blocked in `read(2)`.
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
    Ok(format!("sttlock-serve drained cleanly: {digest}\n"))
}

/// Watches stdin for a stop command (`quit`/`stop`/`shutdown`, or EOF
/// when interactive) without ever blocking in `read(2)`: the stream is
/// re-opened `O_NONBLOCK` (a fresh open file description, so fd 0's
/// flags are untouched) and the loop alternates short reads with
/// [`sttlock_serve::StopHandle::is_stopped`] polls. The handle is
/// joinable — the thread is guaranteed to exit once the server stops.
///
/// Returns `None` when the non-blocking re-open is unavailable (no
/// `/dev/stdin`); the watcher then falls back to a detached blocking
/// reader and shutdown relies on the admin endpoint.
#[cfg(unix)]
fn spawn_stdin_watcher(
    stop: sttlock_serve::StopHandle,
    interactive: bool,
) -> Option<std::thread::JoinHandle<()>> {
    use std::io::Read;
    use std::os::unix::fs::OpenOptionsExt;
    const O_NONBLOCK: i32 = 0o4000;
    let file = std::fs::OpenOptions::new()
        .read(true)
        .custom_flags(O_NONBLOCK)
        .open("/dev/stdin");
    let Ok(mut file) = file else {
        blocking_stdin_watcher(stop, interactive);
        return None;
    };
    Some(std::thread::spawn(move || {
        let mut pending = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            if stop.is_stopped() {
                return; // server already draining; nothing to watch
            }
            match file.read(&mut buf) {
                Ok(0) => {
                    if interactive {
                        break; // Ctrl-D: drain and exit
                    }
                    return; // detached stdin: admin endpoint only
                }
                Ok(n) => {
                    pending.extend_from_slice(&buf[..n]);
                    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = pending.drain(..=pos).collect();
                        if matches!(
                            String::from_utf8_lossy(&line).trim(),
                            "quit" | "stop" | "shutdown"
                        ) {
                            stop.stop();
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                Err(_) => {
                    if interactive {
                        break;
                    }
                    return;
                }
            }
        }
        stop.stop();
    }))
}

/// Non-unix fallback: no `O_NONBLOCK` re-open, so keep the historical
/// detached blocking reader.
#[cfg(not(unix))]
fn spawn_stdin_watcher(
    stop: sttlock_serve::StopHandle,
    interactive: bool,
) -> Option<std::thread::JoinHandle<()>> {
    blocking_stdin_watcher(stop, interactive);
    None
}

/// Detached blocking stdin reader (leaks its thread if the server is
/// stopped some other way — only used when the non-blocking path is
/// unavailable).
fn blocking_stdin_watcher(stop: sttlock_serve::StopHandle, interactive: bool) {
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => {
                    if interactive {
                        break; // Ctrl-D: drain and exit
                    }
                    return; // detached stdin: admin endpoint only
                }
                Ok(_) if matches!(line.trim(), "quit" | "stop" | "shutdown") => break,
                Ok(_) => {}
            }
        }
        stop.stop();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sttlock-cli-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(format!("{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_is_shown_without_arguments() {
        let out = run(&[]).unwrap();
        assert!(out.contains("sttlock-cli"));
        assert!(out.contains("lock"));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let e = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn campaign_rejects_an_explicit_zero_jobs() {
        let e = run(&argv(&["campaign", "--circuits", "s641", "--jobs", "0"])).unwrap_err();
        assert!(
            e.to_string().contains("--jobs"),
            "the error must name the flag: {e}"
        );
        assert!(
            e.to_string().contains("at least 1"),
            "the error must explain the bound: {e}"
        );
        // The same grid parser serves `cluster coordinate`.
        let e = run(&argv(&[
            "cluster",
            "coordinate",
            "--circuits",
            "s641",
            "--jobs",
            "0",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("--jobs"));
    }

    #[test]
    fn cluster_requires_a_known_subcommand_and_a_join_address() {
        let e = run(&argv(&["cluster"])).unwrap_err();
        assert!(e.to_string().contains("coordinate|work"));
        let e = run(&argv(&["cluster", "dance"])).unwrap_err();
        assert!(e.to_string().contains("dance"));
        let e = run(&argv(&["cluster", "work"])).unwrap_err();
        assert!(e.to_string().contains("--join"));
    }

    #[test]
    fn gen_lock_report_program_equiv_pipeline() {
        let design = tmp("design.bench");
        let hybrid = tmp("hybrid.bench");
        let foundry = tmp("foundry.bench");
        let key = tmp("design.key");
        let part = tmp("part.bench");

        // gen
        let out = run(&argv(&[
            "gen",
            "--gates",
            "120",
            "--dffs",
            "6",
            "--inputs",
            "6",
            "--outputs",
            "5",
            "--seed",
            "3",
            "-o",
            &design,
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");

        // lock (programmed view + key file)
        let out = run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "para",
            "--seed",
            "9",
            "-o",
            &hybrid,
            "--bitstream",
            &key,
        ]))
        .unwrap();
        assert!(out.contains("LUTs"), "{out}");

        // lock again, redacted view
        let out = run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "para",
            "--seed",
            "9",
            "-o",
            &foundry,
            "--redact",
        ]))
        .unwrap();
        assert!(out.contains("foundry"), "{out}");

        // report on the hybrid
        let out = run(&argv(&["report", "-i", &hybrid])).unwrap();
        assert!(out.contains("security"), "{out}");
        assert!(out.contains("timing"), "{out}");

        // program the foundry view from the key file
        let out = run(&argv(&[
            "program",
            "-i",
            &foundry,
            "--bitstream",
            &key,
            "-o",
            &part,
        ]))
        .unwrap();
        assert!(out.contains("programmed"), "{out}");

        // the programmed part is provably the original design
        let out = run(&argv(&["equiv", "-a", &design, "-b", &part])).unwrap();
        assert!(out.contains("EQUIVALENT"), "{out}");
    }

    #[test]
    fn convert_between_formats() {
        let design = tmp("conv.bench");
        let verilog_out = tmp("conv.v");
        run(&argv(&[
            "gen",
            "--profile",
            "s820",
            "--seed",
            "1",
            "-o",
            &design,
        ]))
        .unwrap();
        let out = run(&argv(&["convert", "-i", &design, "-o", &verilog_out])).unwrap();
        assert!(out.contains("converted"));
        // Round-trip back and check equivalence.
        let back = tmp("conv_back.bench");
        run(&argv(&["convert", "-i", &verilog_out, "-o", &back])).unwrap();
        let out = run(&argv(&["equiv", "-a", &design, "-b", &back])).unwrap();
        assert!(out.contains("EQUIVALENT"), "{out}");
    }

    #[test]
    fn optimize_reports_shrinkage() {
        let design = tmp("opt_in.bench");
        let optimized = tmp("opt_out.bench");
        run(&argv(&[
            "gen",
            "--gates",
            "150",
            "--dffs",
            "6",
            "--inputs",
            "6",
            "--outputs",
            "5",
            "--seed",
            "4",
            "-o",
            &design,
        ]))
        .unwrap();
        let out = run(&argv(&["optimize", "-i", &design, "-o", &optimized])).unwrap();
        assert!(out.contains("optimized"), "{out}");
        let out = run(&argv(&["equiv", "-a", &design, "-b", &optimized]));
        // Equivalence may be skipped if the optimizer swept registers;
        // interface mismatch is acceptable, inequivalence is not.
        if let Ok(text) = out {
            assert!(!text.contains("DIFFERENT"), "{text}");
        }
    }

    #[test]
    fn attack_modes_run_on_a_locked_pair() {
        let design = tmp("atk_design.bench");
        let foundry = tmp("atk_foundry.bench");
        let key = tmp("atk.key");
        let part = tmp("atk_part.bench");
        run(&argv(&[
            "gen",
            "--gates",
            "80",
            "--dffs",
            "4",
            "--inputs",
            "6",
            "--outputs",
            "4",
            "--seed",
            "5",
            "-o",
            &design,
        ]))
        .unwrap();
        run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "indep",
            "--seed",
            "2",
            "-o",
            &foundry,
            "--redact",
            "--bitstream",
            &key,
        ]))
        .unwrap();
        run(&argv(&[
            "program",
            "-i",
            &foundry,
            "--bitstream",
            &key,
            "-o",
            &part,
        ]))
        .unwrap();

        let out = run(&argv(&[
            "attack", "-i", &foundry, "--oracle", &part, "--mode", "sens", "--seed", "6",
        ]))
        .unwrap();
        assert!(out.contains("sensitization"), "{out}");

        let out = run(&argv(&[
            "attack", "-i", &foundry, "--oracle", &part, "--mode", "sat",
        ]))
        .unwrap();
        assert!(out.contains("KEY RECOVERED"), "{out}");

        let out = run(&argv(&[
            "attack", "-i", &foundry, "--oracle", &part, "--mode", "seq", "--frames", "4",
        ]))
        .unwrap();
        assert!(out.contains("no scan"), "{out}");
    }

    #[test]
    fn custom_library_round_trips_through_lock() {
        let design = tmp("lib_design.bench");
        let libfile = tmp("lib.tech");
        let hybrid = tmp("lib_hybrid.bench");
        run(&argv(&[
            "gen",
            "--gates",
            "90",
            "--dffs",
            "4",
            "--inputs",
            "6",
            "--outputs",
            "4",
            "--seed",
            "8",
            "-o",
            &design,
        ]))
        .unwrap();
        let out = run(&argv(&["library", "-o", &libfile])).unwrap();
        assert!(out.contains("exported"), "{out}");
        let out = run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "indep",
            "--library",
            &libfile,
            "-o",
            &hybrid,
        ]))
        .unwrap();
        assert!(out.contains("LUTs"), "{out}");
        let out = run(&argv(&["report", "-i", &hybrid, "--library", &libfile])).unwrap();
        assert!(out.contains("security"), "{out}");
    }

    #[test]
    fn campaign_runs_a_custom_grid_and_writes_jsonl() {
        let jsonl = tmp("campaign.jsonl");
        let out = run(&argv(&[
            "campaign",
            "--circuits",
            "smoke-a:70:4:6:4,smoke-b:70:4:6:4",
            "--algorithms",
            "indep",
            "--seeds",
            "3",
            "--out",
            &jsonl,
        ]))
        .unwrap();
        assert!(out.contains("Table I"), "{out}");
        assert!(out.contains("Figure 3"), "{out}");
        assert!(out.contains("2 runs (2 ok, 0 failed, 0 timed out"), "{out}");
        let text = fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"status\":\"ok\""), "{text}");
    }

    #[test]
    fn campaign_sweeps_the_override_axis() {
        let jsonl = tmp("campaign-overrides.jsonl");
        let out = run(&argv(&[
            "campaign",
            "--circuits",
            "smoke:70:4:6:4",
            "--algorithms",
            "indep",
            "--indep-gates",
            "2,4",
            "--table",
            "none",
            "--out",
            &jsonl,
        ]))
        .unwrap();
        assert!(out.contains("2 runs (2 ok"), "{out}");
        let text = fs::read_to_string(&jsonl).unwrap();
        assert!(text.contains("\"config\":\"indep_gates=2\""), "{text}");
        assert!(text.contains("\"config\":\"indep_gates=4\""), "{text}");
    }

    #[test]
    fn campaign_injected_faults_are_rows_not_aborts() {
        let out = run(&argv(&[
            "campaign",
            "--circuits",
            "smoke:70:4:6:4",
            "--algorithms",
            "indep",
            "--timeout-secs",
            "1",
            "--inject-panic",
            "--inject-timeout",
            "--table",
            "attacks",
        ]))
        .unwrap();
        assert!(out.contains("panicked"), "{out}");
        assert!(out.contains("timed_out"), "{out}");
        assert!(out.contains("3 runs (1 ok, 1 failed, 1 timed out"), "{out}");
    }

    #[test]
    fn campaign_cache_serves_the_second_run() {
        let cache = tmp("campaign-cache");
        let args = argv(&[
            "campaign",
            "--circuits",
            "cached:70:4:6:4",
            "--algorithms",
            "indep",
            "--cache",
            &cache,
            "--table",
            "none",
        ]);
        let first = run(&args).unwrap();
        assert!(first.contains("0 cached"), "{first}");
        let second = run(&args).unwrap();
        assert!(second.contains("1 cached"), "{second}");
    }

    /// The obs registry is process-global, so the two trace-flag tests
    /// must not overlap each other (no other test installs a collector;
    /// concurrent non-trace tests merely add extra spans, which the
    /// `contains` assertions below tolerate).
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn campaign_trace_exports_span_trees_and_a_summary() {
        let _obs = obs_lock();
        let trace = tmp("campaign-trace.jsonl");
        let out = run(&argv(&[
            "campaign",
            "--circuits",
            "traced:70:4:6:4",
            "--algorithms",
            "indep,para",
            "--table",
            "none",
            "--trace",
            &trace,
            "--trace-summary",
        ]))
        .unwrap();
        assert!(out.contains("== obs summary =="), "{out}");
        assert!(out.contains("campaign.cell"), "{out}");
        let text = fs::read_to_string(&trace).unwrap();
        assert!(
            text.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
            "{text}"
        );
        for name in [
            "campaign.execute",
            "campaign.cell",
            "cell.generate",
            "cell.flow",
            "flow.selection",
            "flow.replace",
        ] {
            assert!(
                text.contains(&format!("\"name\":\"{name}\"")),
                "missing span `{name}` in trace:\n{text}"
            );
        }
        // The per-cell spans hang off the campaign.execute root even
        // though the cells ran on worker threads.
        let exec = text
            .lines()
            .find(|l| l.contains("\"name\":\"campaign.execute\""))
            .unwrap();
        let id = exec
            .split("\"id\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        assert!(
            text.contains(&format!("\"parent\":{id},\"name\":\"campaign.cell\"")),
            "{text}"
        );
    }

    #[test]
    fn faults_trace_summary_covers_the_repair_loop() {
        let _obs = obs_lock();
        let out = run(&argv(&[
            "faults",
            "--profile",
            "s641",
            "--algorithm",
            "indep",
            "--seed",
            "7",
            "--trace-summary",
        ]))
        .unwrap();
        assert!(out.contains("== obs summary =="), "{out}");
        assert!(out.contains("repair.round"), "{out}");
        assert!(out.contains("repair.verify"), "{out}");
        assert!(out.contains("flow.selection"), "{out}");
    }

    #[test]
    fn faults_injects_and_repairs_a_generated_profile() {
        let out = run(&argv(&[
            "faults",
            "--profile",
            "s641",
            "--algorithm",
            "indep",
            "--seed",
            "7",
            "--write-p",
            "0.2",
        ]))
        .unwrap();
        assert!(out.contains("injected"), "{out}");
        assert!(!out.contains("injected 0 fault(s)"), "{out}");
        // At wf=0.2 the repair channel itself keeps failing writes, so
        // any verdict from the taxonomy is legitimate — the command
        // must report one rather than panic or refuse.
        assert!(
            ["recovered", "degraded", "unrecoverable"]
                .iter()
                .any(|v| out.contains(&format!("verify+repair: {v}"))),
            "{out}"
        );
        assert!(out.contains("security under faults"), "{out}");
    }

    #[test]
    fn faults_verifies_a_programmed_part_from_disk() {
        let design = tmp("flt_design.bench");
        let hybrid = tmp("flt_hybrid.bench");
        run(&argv(&[
            "gen",
            "--gates",
            "80",
            "--dffs",
            "4",
            "--inputs",
            "6",
            "--outputs",
            "4",
            "--seed",
            "5",
            "-o",
            &design,
        ]))
        .unwrap();
        run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "indep",
            "--seed",
            "2",
            "-o",
            &hybrid,
        ]))
        .unwrap();
        // Fault-free model: a pure verify must conclude recovered with
        // zero retries.
        let out = run(&argv(&["faults", "-i", &hybrid])).unwrap();
        assert!(out.contains("injected 0 fault(s)"), "{out}");
        assert!(out.contains("recovered after 0 retry"), "{out}");

        // Unlockable inputs are typed errors, not panics.
        let e = run(&argv(&["faults", "-i", &design])).unwrap_err();
        assert!(e.to_string().contains("no LUTs"), "{e}");
        let redacted = tmp("flt_foundry.bench");
        run(&argv(&[
            "lock",
            "-i",
            &design,
            "--algorithm",
            "indep",
            "--seed",
            "2",
            "-o",
            &redacted,
            "--redact",
        ]))
        .unwrap();
        let e = run(&argv(&["faults", "-i", &redacted])).unwrap_err();
        assert!(e.to_string().contains("redacted"), "{e}");
    }

    #[test]
    fn campaign_fault_sweep_renders_the_recovery_table() {
        let out = run(&argv(&[
            "campaign",
            "--circuits",
            "fsweep:70:4:6:4",
            "--algorithms",
            "indep",
            "--seeds",
            "3",
            "--fault-p",
            "0,0.1",
            "--table",
            "faults",
        ]))
        .unwrap();
        assert!(out.contains("Fault sweep"), "{out}");
        assert!(out.contains("wf=0.1"), "{out}");
        assert!(out.contains("2 runs (2 ok"), "{out}");
    }

    #[test]
    fn campaign_resume_replays_the_journal() {
        let journal = tmp("resume.jsonl");
        let base = [
            "campaign",
            "--circuits",
            "resumed:70:4:6:4",
            "--algorithms",
            "indep",
            "--table",
            "none",
            "--journal",
            &journal,
        ];
        let first = run(&argv(&base)).unwrap();
        assert!(first.contains("1 ok"), "{first}");
        let entries = |path: &str| {
            sttlock_store::read_all::<sttlock_campaign::JournalEntry>(Path::new(path))
                .unwrap()
                .0
        };
        assert_eq!(entries(&journal).len(), 1);

        let mut resumed_args = base.to_vec();
        resumed_args.push("--resume");
        let second = run(&argv(&resumed_args)).unwrap();
        assert!(second.contains("1 ok"), "{second}");
        // The replayed cell did not re-execute: no new journal entry.
        assert_eq!(entries(&journal).len(), 1);

        // --resume without --journal is a usage error.
        assert!(matches!(
            run(&argv(&["campaign", "--circuits", "x:70:4:6:4", "--resume"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn campaign_rejects_bad_grids() {
        assert!(matches!(
            run(&argv(&["campaign", "--circuits", "nosuch"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["campaign", "--circuits", "x:1:2"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["campaign", "--attacks", "frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["campaign", "--table", "table9"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_flags_produce_usage_errors() {
        assert!(matches!(run(&argv(&["lock"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&argv(&["report"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["gen", "-o", "x.bench"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_extension_is_rejected() {
        let e = load_netlist("design.xyz").unwrap_err();
        // Missing file is also fine as long as the message is usable.
        assert!(!e.to_string().is_empty());
    }
}
