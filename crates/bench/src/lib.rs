//! Reproduction harness for the evaluation section of
//! *"Hybrid STT-CMOS Designs for Reverse-engineering Prevention"*.
//!
//! One binary per published artifact:
//!
//! | Binary | Paper artifact | What it prints |
//! |---|---|---|
//! | `fig1` | Figure 1 | MTJ-LUT vs static CMOS ratio table: published values next to the ratios derived from the calibrated technology model |
//! | `table1` | Table I | Performance / power / area overheads and STT counts for the 12 benchmarks × 3 selection algorithms |
//! | `table2` | Table II | Selection CPU time per benchmark × algorithm |
//! | `fig3` | Figure 3 | Required test clocks (log scale) per benchmark × algorithm |
//! | `ablation` | (ours) | LUT-count and hardening sweeps behind the design choices |
//!
//! Every binary accepts `--max-gates <n>` to restrict the benchmark set
//! for quick runs (the full suite up to s38584 takes minutes on a laptop
//! core, matching the paper's Table II magnitudes) and `--seed <n>` for
//! reproducible randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::{profiles, Profile};
use sttlock_netlist::Netlist;

/// Shared command-line options of the reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Skip benchmarks above this gate count.
    pub max_gates: usize,
    /// Seed for circuit generation and selection.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            max_gates: usize::MAX,
            seed: 42,
        }
    }
}

impl HarnessArgs {
    /// Parses `--max-gates <n>` and `--seed <n>` from the process args.
    ///
    /// Unknown flags abort with a usage message, so typos do not silently
    /// run the full suite.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--max-gates" => {
                    out.max_gates = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--max-gates needs an integer"));
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        out
    }

    /// The benchmark profiles selected by `--max-gates`.
    pub fn profiles(&self) -> Vec<Profile> {
        profiles::up_to(self.max_gates)
    }

    /// Generates the circuit for a profile with this run's seed.
    pub fn generate(&self, profile: &Profile) -> Netlist {
        let mut rng = StdRng::seed_from_u64(self.seed ^ fxhash(profile.name));
        profile.generate(&mut rng)
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: <bin> [--max-gates N] [--seed N]");
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}

/// Tiny deterministic string hash so each benchmark gets its own stream
/// from one user-facing seed.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_cover_all_profiles() {
        let a = HarnessArgs::default();
        assert_eq!(a.profiles().len(), 12);
    }

    #[test]
    fn max_gates_filters() {
        let a = HarnessArgs {
            max_gates: 700,
            seed: 1,
        };
        assert!(a.profiles().iter().all(|p| p.gates <= 700));
    }

    #[test]
    fn per_profile_seeds_differ() {
        assert_ne!(fxhash("s641"), fxhash("s820"));
    }

    #[test]
    fn generate_matches_profile() {
        let a = HarnessArgs {
            max_gates: 300,
            seed: 9,
        };
        let p = a.profiles()[0];
        let n = a.generate(&p);
        assert_eq!(n.gate_count(), p.gates);
    }
}
