//! Reproduction harness for the evaluation section of
//! *"Hybrid STT-CMOS Designs for Reverse-engineering Prevention"*.
//!
//! One binary per published artifact:
//!
//! | Binary | Paper artifact | What it prints |
//! |---|---|---|
//! | `fig1` | Figure 1 | MTJ-LUT vs static CMOS ratio table: published values next to the ratios derived from the calibrated technology model |
//! | `table1` | Table I | Performance / power / area overheads and STT counts for the 12 benchmarks × 3 selection algorithms |
//! | `table2` | Table II | Selection CPU time per benchmark × algorithm |
//! | `fig3` | Figure 3 | Required test clocks (log scale) per benchmark × algorithm |
//! | `ablation` | (ours) | LUT-count and hardening sweeps behind the design choices |
//!
//! Every binary accepts `--max-gates <n>` to restrict the benchmark set
//! for quick runs (the full suite up to s38584 takes minutes on a laptop
//! core, matching the paper's Table II magnitudes) and `--seed <n>` for
//! reproducible randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::{profiles, Profile};
use sttlock_campaign::{circuit_seed, AttackKind, CampaignSpec, CircuitSpec};
use sttlock_netlist::Netlist;

/// Shared command-line options of the reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Skip benchmarks above this gate count.
    pub max_gates: usize,
    /// Seed for circuit generation and selection.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            max_gates: usize::MAX,
            seed: 42,
        }
    }
}

impl HarnessArgs {
    /// Parses `--max-gates <n>` and `--seed <n>` from the process args.
    ///
    /// Unknown flags abort with a usage message, so typos do not silently
    /// run the full suite.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--max-gates" => {
                    out.max_gates = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--max-gates needs an integer"));
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        out
    }

    /// The benchmark profiles selected by `--max-gates`.
    pub fn profiles(&self) -> Vec<Profile> {
        profiles::up_to(self.max_gates)
    }

    /// Generates the circuit for a profile with this run's seed.
    ///
    /// The per-profile stream split lives in
    /// [`sttlock_campaign::circuit_seed`] so the campaign engine and
    /// these binaries generate byte-identical circuits.
    pub fn generate(&self, profile: &Profile) -> Netlist {
        let mut rng = StdRng::seed_from_u64(circuit_seed(self.seed, profile.name));
        profile.generate(&mut rng)
    }

    /// The campaign grid equivalent to this harness invocation: the
    /// selected profiles × all three algorithms × this seed, flow only.
    ///
    /// The table binaries are thin wrappers over this spec — they
    /// inherit the campaign's parallelism and fault isolation for free.
    pub fn campaign_spec(&self) -> CampaignSpec {
        CampaignSpec {
            circuits: self
                .profiles()
                .iter()
                .map(|p| CircuitSpec::Profile(p.name.to_owned()))
                .collect(),
            seeds: vec![self.seed],
            attacks: vec![AttackKind::None],
            ..CampaignSpec::default()
        }
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: <bin> [--max-gates N] [--seed N]");
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_cover_all_profiles() {
        let a = HarnessArgs::default();
        assert_eq!(a.profiles().len(), 12);
    }

    #[test]
    fn max_gates_filters() {
        let a = HarnessArgs {
            max_gates: 700,
            seed: 1,
        };
        assert!(a.profiles().iter().all(|p| p.gates <= 700));
    }

    #[test]
    fn per_profile_seeds_differ() {
        assert_ne!(circuit_seed(42, "s641"), circuit_seed(42, "s820"));
    }

    #[test]
    fn campaign_spec_mirrors_the_harness() {
        let a = HarnessArgs {
            max_gates: 700,
            seed: 5,
        };
        let spec = a.campaign_spec();
        assert_eq!(spec.circuits.len(), a.profiles().len());
        assert_eq!(spec.seeds, vec![5]);
        assert_eq!(spec.attacks, vec![AttackKind::None]);
        assert_eq!(spec.algorithms.len(), 3);
    }

    #[test]
    fn generate_matches_profile() {
        let a = HarnessArgs {
            max_gates: 300,
            seed: 9,
        };
        let p = a.profiles()[0];
        let n = a.generate(&p);
        assert_eq!(n.gate_count(), p.gates);
    }
}
