//! Regenerates **Table II**: the CPU time for selecting gates for
//! replacement under the three selection algorithms.
//!
//! The paper reports MM:SS.s wall-clock on a 1.7 GHz Core i7; the same
//! format is used here. Expected shape: sub-second for the small
//! benchmarks, seconds to about a minute for the s5378a..s38584 class.
//!
//! Usage: `table2 [--max-gates N] [--seed N]`.

use std::time::Duration;

use sttlock_bench::HarnessArgs;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_techlib::Library;

fn fmt_mmss(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    let seconds = total - (minutes as f64) * 60.0;
    format!("{minutes:02}:{seconds:04.1}")
}

fn main() {
    let args = HarnessArgs::parse();
    let flow = Flow::new(Library::predictive_90nm());

    println!(
        "Table II — CPU time (MM:SS.s) for gate selection (seed {})",
        args.seed
    );
    println!(
        "{:<9} | {:>12} | {:>12} | {:>12}",
        "Circuit", "Independent", "Dependent", "Parametric"
    );
    println!("{}", "-".repeat(54));

    for profile in args.profiles() {
        let netlist = args.generate(&profile);
        let mut cells = Vec::with_capacity(3);
        for alg in SelectionAlgorithm::ALL {
            let text = match flow.run(&netlist, alg, args.seed) {
                Ok(out) => fmt_mmss(out.report.selection_time),
                Err(e) => format!("({e})"),
            };
            cells.push(text);
        }
        println!(
            "{:<9} | {:>12} | {:>12} | {:>12}",
            profile.name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("Paper: all selections finish under ~1:31, s38584 parametric in 00:44.0.");
}
