//! Regenerates **Table II**: the CPU time for selecting gates for
//! replacement under the three selection algorithms.
//!
//! The paper reports MM:SS.s wall-clock on a 1.7 GHz Core i7; the same
//! format is used here. Expected shape: sub-second for the small
//! benchmarks, seconds to about a minute for the s5378a..s38584 class.
//!
//! Thin wrapper over the campaign engine (`sttlock-campaign`). Note the
//! campaign runs cells in parallel: the *selection* time per cell is
//! still a single-core measurement (it is timed inside the flow), so
//! the Table II numbers are unaffected by the worker count.
//!
//! Usage: `table2 [--max-gates N] [--seed N]`.

use sttlock_bench::HarnessArgs;
use sttlock_campaign::{execute, render};

fn main() {
    let args = HarnessArgs::parse();
    let result = execute(&args.campaign_spec());
    for r in result.records.iter().filter(|r| !r.status.is_ok()) {
        eprintln!("{}/{}: {}", r.circuit, r.algorithm, r.status.tag());
    }
    print!("{}", render::render_table2(&result.records, args.seed));
}
