//! Regenerates **Figure 1**: comparison of the MTJ-based LUT and static
//! CMOS circuit styles (delay, active power at α = 10 % / 30 %, standby
//! power, energy per switching), normalized to static CMOS.
//!
//! Two columns per metric: the value published in the paper and the one
//! derived from the calibrated technology model, plus the residual. The
//! derived column cannot match every gate exactly — a single per-fan-in
//! LUT is compared against six different CMOS baselines — but the trends
//! (overhead shrinking with complexity, exact 3x between the two
//! activity columns, standby advantage eroding for stacked NAND4/NOR4)
//! must and do hold.

use sttlock_techlib::{fig1, Library};

fn main() {
    let lib = Library::predictive_90nm();
    println!("Figure 1 — MTJ-based LUT vs static CMOS (normalized to CMOS)");
    println!(
        "technology: calibrated synthetic 90 nm CMOS + STT-LUT model @ {} GHz",
        lib.clock_ghz()
    );
    println!();
    println!(
        "{:<6} {:<26} {:>10} {:>10} {:>9}",
        "Gate", "Metric", "published", "derived", "ratio"
    );
    println!("{}", "-".repeat(66));

    for e in fig1::PUBLISHED {
        let cell = lib.gate(e.kind, e.fanin);
        let lut = lib.lut(e.fanin);
        let f = lib.clock_ghz();

        let derived_delay = lut.delay_ns / cell.delay_ns;
        // CMOS active power at activity α: α·f·E_sw (µW). Figure 1 is an
        // isolated microbenchmark, so the LUT side uses the microbench
        // read energy (circuit-level analyses apply the duty-derated
        // `cycle_energy_fj` instead — see `LutParams`).
        let cmos_active = |alpha: f64| alpha * f * cell.switch_energy_fj;
        let lut_active = f * lut.microbench_cycle_energy_fj;
        let derived_ap10 = lut_active / cmos_active(0.10);
        let derived_ap30 = lut_active / cmos_active(0.30);
        let derived_standby = lut.standby_nw / cell.leakage_nw;
        let derived_eps = lut.microbench_cycle_energy_fj / cell.switch_energy_fj;

        let gate = format!("{}{}", e.kind, e.fanin);
        let rows = [
            ("Delay", e.delay, derived_delay),
            ("Active Power (a=10%)", e.active_power_10, derived_ap10),
            ("Active Power (a=30%)", e.active_power_30, derived_ap30),
            ("Standby Power", e.standby_power, derived_standby),
            ("Energy per Switching", e.energy_per_switching, derived_eps),
        ];
        for (i, (metric, published, derived)) in rows.iter().enumerate() {
            let head = if i == 0 { gate.as_str() } else { "" };
            println!(
                "{:<6} {:<26} {:>10.2} {:>10.2} {:>8.2}x",
                head,
                metric,
                published,
                derived,
                derived / published
            );
        }
        println!();
    }

    println!("Trend checks (paper Section III):");
    let d2 = lib.lut(2).delay_ns / lib.gate(sttlock_netlist::GateKind::Nand, 2).delay_ns;
    let d4 = lib.lut(4).delay_ns / lib.gate(sttlock_netlist::GateKind::Nand, 4).delay_ns;
    println!("  - LUT delay overhead shrinks with complexity: NAND2 {d2:.2}x -> NAND4 {d4:.2}x");
    let s2 = lib.lut(2).standby_nw / lib.gate(sttlock_netlist::GateKind::Nand, 2).leakage_nw;
    println!("  - LUT standby power below small-gate CMOS: NAND2 ratio {s2:.2}");
    println!("  - LUT active power independent of activity: 10%/30% columns differ exactly 3x");
}
