//! Ablation sweeps behind the design choices called out in DESIGN.md:
//!
//! 1. **LUT budget sweep** — independent selection with 1..=64 LUTs on a
//!    mid-size benchmark: overheads grow linearly, the Equation 1 attack
//!    effort only linearly too (why independent selection is weak).
//! 2. **Parametric path-count sweep** — more targeted paths buy
//!    exponentially more brute-force effort (Equation 3) at near-flat
//!    performance cost.
//! 3. **Hardening ablation** — decoy inputs and function absorption
//!    (Section IV-A.3) versus the plain hybrid: key-space bits per LUT.
//! 4. **Camouflaging comparison** — the CCS'13-style camouflaged cell
//!    (3 candidates per gate) versus the STT LUT (2^2^k candidates):
//!    hypothesis-space size and measured SAT-attack effort on the same
//!    circuit, quantifying the paper's Section IV-A.3 argument.
//!
//! Usage: `ablation [--max-gates N] [--seed N]` (sweeps run on the
//! largest profile within `--max-gates`, default s1488).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::estimate::BigEffort;
use sttlock_bench::HarnessArgs;
use sttlock_campaign::{execute, CampaignSpec, CircuitSpec, SelectionOverrides};
use sttlock_core::harden::{harden, HardenConfig};
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_techlib::Library;

fn main() {
    let args = HarnessArgs::parse();
    let profile = args
        .profiles()
        .into_iter()
        .rfind(|p| p.gates <= args.max_gates.min(700))
        .expect("at least one profile in range");
    let netlist = args.generate(&profile);
    let lib = Library::predictive_90nm();

    println!(
        "Ablations on {} ({} gates), seed {}",
        profile.name,
        netlist.gate_count(),
        args.seed
    );

    // Sweeps 1–2 are campaign grids over the selection-override axis:
    // every sweep point is an isolated, parallel cell.
    let sweep = |algorithm: SelectionAlgorithm, overrides: Vec<SelectionOverrides>| {
        let spec = CampaignSpec {
            circuits: vec![CircuitSpec::Profile(profile.name.to_owned())],
            algorithms: vec![algorithm],
            seeds: vec![args.seed],
            overrides,
            ..CampaignSpec::default()
        };
        execute(&spec).records
    };

    // 1. LUT budget sweep (independent selection).
    println!();
    println!("1) Independent-selection LUT budget sweep");
    println!(
        "{:>6} | {:>8} | {:>8} | {:>10}",
        "#LUTs", "power%", "area%", "N_indep"
    );
    let budgets = [1usize, 2, 4, 8, 16, 32, 64];
    let records = sweep(
        SelectionAlgorithm::Independent,
        budgets
            .iter()
            .map(|&b| SelectionOverrides {
                independent_gates: Some(b),
                ..SelectionOverrides::default()
            })
            .collect(),
    );
    for (budget, r) in budgets.iter().zip(&records) {
        match r.flow {
            Some(m) => println!(
                "{:>6} | {:>8.2} | {:>8.2} | {:>10}",
                m.stt_count,
                m.power_pct,
                m.area_pct,
                BigEffort::from_log10(m.n_indep_log10)
            ),
            None => println!("{budget:>6} | ({})", r.status.tag()),
        }
    }

    // 2. Parametric path-count sweep.
    println!();
    println!("2) Parametric-aware targeted-path sweep");
    println!(
        "{:>6} | {:>6} | {:>8} | {:>8} | {:>12}",
        "paths", "#LUTs", "perf%", "power%", "N_bf"
    );
    let paths_sweep = [1usize, 2, 4, 8, 16];
    let records = sweep(
        SelectionAlgorithm::ParametricAware,
        paths_sweep
            .iter()
            .map(|&p| SelectionOverrides {
                parametric_paths: Some(p),
                ..SelectionOverrides::default()
            })
            .collect(),
    );
    for (paths, r) in paths_sweep.iter().zip(&records) {
        match r.flow {
            Some(m) => println!(
                "{:>6} | {:>6} | {:>8.2} | {:>8.2} | {:>12}",
                paths,
                m.stt_count,
                m.perf_pct,
                m.power_pct,
                BigEffort::from_log10(m.n_bf_log10)
            ),
            None => println!("{paths:>6} | ({})", r.status.tag()),
        }
    }

    // 3. Hardening ablation: key bits per LUT before/after.
    println!();
    println!("3) LUT hardening (Section IV-A.3 countermeasures)");
    let flow = Flow::new(lib);
    let out = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, args.seed)
        .expect("parametric flow");
    let plain_bits: usize = out
        .hybrid
        .node_ids()
        .filter(|&id| out.hybrid.node(id).is_lut())
        .map(|id| 1usize << out.hybrid.node(id).fanin().len())
        .sum();
    let mut hardened = out.hybrid.clone();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let report =
        harden(&mut hardened, &HardenConfig::default(), &mut rng).expect("programmed view");
    let hard_bits: usize = hardened
        .node_ids()
        .filter(|&id| hardened.node(id).is_lut())
        .map(|id| 1usize << hardened.node(id).fanin().len())
        .sum();
    println!("  LUTs: {}", out.report.stt_count);
    println!("  decoy inputs added: {}", report.decoys_added);
    println!("  gates absorbed into LUTs: {}", report.gates_absorbed);
    println!(
        "  key bits: {plain_bits} -> {hard_bits} ({:.1}x key-space exponent)",
        hard_bits as f64 / plain_bits as f64
    );

    // 4. Camouflaging (CCS'13, 3 candidates/gate) vs STT LUTs: same
    //    circuit, same gate positions, measured SAT-attack effort.
    println!();
    println!("4) Camouflaging (3 candidates/gate) vs STT LUTs (2^2^k candidates)");
    let small = sttlock_benchgen::Profile::custom("camo", 160, 8, 9, 7)
        .generate(&mut StdRng::seed_from_u64(args.seed));
    let mut flow = Flow::new(Library::predictive_90nm());
    flow.selection.independent_gates = 6;
    let locked = flow
        .run(&small, SelectionAlgorithm::Independent, args.seed)
        .expect("flow runs");
    let redacted = locked.foundry_view();
    let (camo_space, lut_space) =
        sttlock_attack::camouflage::search_space_log10(&redacted, |_| 3.0);
    println!("  hypothesis space (log10): camouflage {camo_space:.1} vs STT LUT {lut_space:.1}");
    let sat = sttlock_attack::sat_attack::run(
        &redacted,
        &locked.hybrid,
        &sttlock_attack::sat_attack::SatAttackConfig::default(),
    )
    .expect("attack runs");
    println!(
        "  SAT attack vs unrestricted LUTs: {} DIPs, {} conflicts",
        sat.dips, sat.solver_stats.conflicts
    );
    println!("  (camouflage restriction shrinks the key space the attacker must search;");
    println!("   see attack::camouflage::restrict_keys for the executable encoding)");
}
