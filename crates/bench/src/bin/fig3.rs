//! Regenerates **Figure 3**: the number of possible required test clocks
//! to determine the functionality of the missing gates, per benchmark
//! and selection algorithm (log scale — the parametric-aware numbers
//! reach 10²⁰⁰⁺).
//!
//! Also prints the headline conversion the paper makes: years of attack
//! time at one billion pattern applications per second.
//!
//! Thin wrapper over the campaign engine (`sttlock-campaign`): the grid
//! runs in parallel with per-cell fault isolation.
//!
//! Usage: `fig3 [--max-gates N] [--seed N]`.

use sttlock_bench::HarnessArgs;
use sttlock_campaign::{execute, render};

fn main() {
    let args = HarnessArgs::parse();
    let result = execute(&args.campaign_spec());
    for r in result.records.iter().filter(|r| !r.status.is_ok()) {
        eprintln!("{}/{}: {}", r.circuit, r.algorithm, r.status.tag());
    }
    print!("{}", render::render_fig3(&result.records, args.seed));
}
