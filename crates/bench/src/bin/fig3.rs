//! Regenerates **Figure 3**: the number of possible required test clocks
//! to determine the functionality of the missing gates, per benchmark
//! and selection algorithm (log scale — the parametric-aware numbers
//! reach 10²⁰⁰⁺).
//!
//! Also prints the headline conversion the paper makes: years of attack
//! time at one billion pattern applications per second.
//!
//! Usage: `fig3 [--max-gates N] [--seed N]`.

use sttlock_bench::HarnessArgs;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_techlib::Library;

fn main() {
    let args = HarnessArgs::parse();
    let flow = Flow::new(Library::predictive_90nm());
    const RATE: f64 = 1e9; // patterns per second, per the paper

    println!(
        "Figure 3 — required test clocks to resolve the missing gates (seed {})",
        args.seed
    );
    println!(
        "{:<9} | {:>12} | {:>12} | {:>12} | {:>14}",
        "Circuit", "N_indep", "N_dep", "N_bf (para)", "para years@1e9/s"
    );
    println!("{}", "-".repeat(72));

    for profile in args.profiles() {
        let netlist = args.generate(&profile);
        let mut cells: Vec<String> = Vec::new();
        let mut para_years = String::from("-");
        for alg in SelectionAlgorithm::ALL {
            match flow.run(&netlist, alg, args.seed) {
                Ok(out) => {
                    let effort = match alg {
                        SelectionAlgorithm::Independent => out.report.security.n_indep,
                        SelectionAlgorithm::Dependent => out.report.security.n_dep,
                        SelectionAlgorithm::ParametricAware => out.report.security.n_bf,
                    };
                    cells.push(effort.to_string());
                    if alg == SelectionAlgorithm::ParametricAware {
                        let years = effort.years_at(RATE);
                        para_years = if years > 1e9 {
                            format!("{:.2e}", years)
                        } else {
                            format!("{years:.1}")
                        };
                    }
                }
                Err(e) => cells.push(format!("({e})")),
            }
        }
        println!(
            "{:<9} | {:>12} | {:>12} | {:>12} | {:>14}",
            profile.name, cells[0], cells[1], cells[2], para_years
        );
    }
    println!();
    println!("Paper reference point: s38584 parametric-aware needs ~6.07E+219 test clocks");
    println!("(> 1000 years at 1e9 patterns/s even for the small circuits).");
}
