//! Regenerates **Table I**: the percentage of performance, power and
//! area overhead after introducing STT-based LUT units, for the twelve
//! ISCAS '89-profile benchmarks under the independent, dependent and
//! parametric-aware selection algorithms, plus the number of inserted
//! LUTs and the circuit size.
//!
//! Thin wrapper over the campaign engine (`sttlock-campaign`): the grid
//! runs in parallel with per-cell fault isolation, and failures show up
//! on stderr instead of aborting the table.
//!
//! Usage: `table1 [--max-gates N] [--seed N]`.

use sttlock_bench::HarnessArgs;
use sttlock_campaign::{execute, render};

fn main() {
    let args = HarnessArgs::parse();
    let result = execute(&args.campaign_spec());
    for r in result.records.iter().filter(|r| !r.status.is_ok()) {
        eprintln!("{}/{}: {}", r.circuit, r.algorithm, r.status.tag());
    }
    print!("{}", render::render_table1(&result.records, args.seed));
}
