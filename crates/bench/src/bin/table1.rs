//! Regenerates **Table I**: the percentage of performance, power and
//! area overhead after introducing STT-based LUT units, for the twelve
//! ISCAS '89-profile benchmarks under the independent, dependent and
//! parametric-aware selection algorithms, plus the number of inserted
//! LUTs and the circuit size.
//!
//! Usage: `table1 [--max-gates N] [--seed N]`.

use sttlock_bench::HarnessArgs;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_techlib::Library;

fn main() {
    let args = HarnessArgs::parse();
    let flow = Flow::new(Library::predictive_90nm());

    println!(
        "Table I — overhead after introducing STT-based LUTs (seed {})",
        args.seed
    );
    println!(
        "{:<9} | {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} | {:>5} {:>5} {:>5} | {:>7}",
        "Circuit",
        "PerfI", "PerfD", "PerfP",
        "PwrI", "PwrD", "PwrP",
        "AreaI", "AreaD", "AreaP",
        "#I", "#D", "#P",
        "size"
    );
    println!("{}", "-".repeat(118));

    let mut sums = [[0.0f64; 3]; 3]; // [metric][algorithm]
    let mut counts = [0.0f64; 3];
    let mut rows = 0usize;

    for profile in args.profiles() {
        let netlist = args.generate(&profile);
        let mut perf = [0.0; 3];
        let mut power = [0.0; 3];
        let mut area = [0.0; 3];
        let mut stts = [0usize; 3];
        for (i, alg) in SelectionAlgorithm::ALL.iter().enumerate() {
            match flow.run(&netlist, *alg, args.seed) {
                Ok(out) => {
                    perf[i] = out.report.performance_degradation_pct;
                    power[i] = out.report.power_overhead_pct;
                    area[i] = out.report.area_overhead_pct;
                    stts[i] = out.report.stt_count;
                }
                Err(e) => {
                    eprintln!("{}/{alg}: {e}", profile.name);
                }
            }
        }
        println!(
            "{:<9} | {:>6.2} {:>6.2} {:>6.2} | {:>7.2} {:>7.2} {:>7.2} | {:>6.2} {:>6.2} {:>6.2} | {:>5} {:>5} {:>5} | {:>7}",
            profile.name,
            perf[0], perf[1], perf[2],
            power[0], power[1], power[2],
            area[0], area[1], area[2],
            stts[0], stts[1], stts[2],
            netlist.gate_count(),
        );
        for a in 0..3 {
            sums[0][a] += perf[a];
            sums[1][a] += power[a];
            sums[2][a] += area[a];
            counts[a] += stts[a] as f64;
        }
        rows += 1;
    }

    if rows > 0 {
        let n = rows as f64;
        println!("{}", "-".repeat(118));
        println!(
            "{:<9} | {:>6.2} {:>6.2} {:>6.2} | {:>7.2} {:>7.2} {:>7.2} | {:>6.2} {:>6.2} {:>6.2} | {:>5.1} {:>5.1} {:>5.1} |",
            "Average",
            sums[0][0] / n, sums[0][1] / n, sums[0][2] / n,
            sums[1][0] / n, sums[1][1] / n, sums[1][2] / n,
            sums[2][0] / n, sums[2][1] / n, sums[2][2] / n,
            counts[0] / n, counts[1] / n, counts[2] / n,
        );
        println!();
        println!("Paper (Table I) averages for comparison:");
        println!("  perf: 2.69 / 28.40 / 2.36 %   power: 6.12 / 24.96 / 7.23 %   area: 1.47 / 6.45 / 2.84 %   #STT: 5.0 / 60.7 / 48.7");
        println!("Expected shape: dependent worst on performance/power; overheads shrink as circuits grow.");
    }
}
