//! Static-timing-analysis throughput — STA dominates the parametric
//! selection's inner retry loop, so its scaling explains the Table II
//! CPU times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::profiles;
use sttlock_sta::analyze;
use sttlock_techlib::Library;

fn bench_sta(c: &mut Criterion) {
    let lib = Library::predictive_90nm();
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    for profile in profiles::up_to(3000) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name),
            &netlist,
            |b, n| b.iter(|| analyze(n, &lib)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
