//! Cost of the exec runtime the whole stack now runs on.
//!
//! Every budgeted hot loop (selection retry draws, STA candidate
//! evals, sensitization oracle queries) pays one `charge` + `check`
//! per unit of work, and every parallel stage (campaign grid, serve
//! request pool, `batch_eval`) goes through the pool primitives, so
//! their fixed costs bound how finely work can be metered:
//!
//! * `budget/*` — `charge(1)` + `check()` in a tight loop, on a root
//!   budget and at the bottom of a three-deep child chain (the serve →
//!   flow → attack nesting). The chain walk is the per-step price of
//!   hierarchical cancellation.
//! * `scoped_map/*` — fork/join over a CPU-bound workload versus the
//!   serial loop, at 1 and 4 workers. The 1-worker number isolates the
//!   scope + catch_unwind overhead; the 4-worker number shows the
//!   speedup the campaign grid and `batch_eval` actually get.
//! * `pool/dispatch` — admit-and-run latency of tiny jobs through a
//!   bounded [`Pool`], the per-request floor of the serve layer.
//!
//! `STTLOCK_BENCH_QUICK=1` trims sizes for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sttlock_exec::{scoped_map, Budget, Pool};

fn quick() -> bool {
    std::env::var_os("STTLOCK_BENCH_QUICK").is_some()
}

/// Steps charged per bench iteration in the budget loops.
fn charge_n() -> u64 {
    if quick() {
        1_000
    } else {
        100_000
    }
}

/// Items mapped per bench iteration in the scoped_map loops.
fn map_n() -> usize {
    if quick() {
        64
    } else {
        1_024
    }
}

/// CPU-bound unit of work, heavy enough that a 4-worker split is
/// visible over the fork/join fixed costs.
fn work(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..2_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn bench_budget(c: &mut Criterion) {
    let n = charge_n();
    let mut group = c.benchmark_group("budget");
    group.sample_size(20);

    group.bench_function("charge_check_root", |b| {
        let budget = Budget::new(None, Some(u64::MAX));
        b.iter(|| {
            for _ in 0..n {
                budget.charge(1);
                black_box(budget.check().is_ok());
            }
            budget.steps_spent()
        })
    });

    // serve → flow → attack: three nodes between the charge and the
    // root, all billed and all consulted by `check`.
    group.bench_function("charge_check_depth3", |b| {
        let root = Budget::new(None, Some(u64::MAX));
        let leaf = root.child().child().child();
        b.iter(|| {
            for _ in 0..n {
                leaf.charge(1);
                black_box(leaf.check().is_ok());
            }
            leaf.steps_spent()
        })
    });

    group.finish();
}

fn bench_scoped_map(c: &mut Criterion) {
    let n = map_n();
    let mut group = c.benchmark_group("scoped_map");
    group.sample_size(10);

    group.bench_function("serial_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(work(i as u64));
            }
            acc
        })
    });

    for workers in [1usize, 4] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                scoped_map(workers, n, |i| work(i as u64))
                    .into_iter()
                    .map(|r| r.unwrap())
                    .fold(0u64, u64::wrapping_add)
            })
        });
    }

    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let jobs = if quick() { 64 } else { 512 };
    let mut group = c.benchmark_group("pool");
    group.sample_size(10);

    // Admit `jobs` tiny jobs and wait for the last one: dominated by
    // queue handoff + catch_unwind, the fixed per-request cost serve
    // pays before any handler work.
    group.bench_function("dispatch", |b| {
        b.iter(|| {
            let pool = Pool::new(4, jobs);
            let (tx, rx) = std::sync::mpsc::channel::<u64>();
            for i in 0..jobs {
                let tx = tx.clone();
                pool.try_execute(move || {
                    let _ = tx.send(work(i as u64));
                })
                .expect("queue sized to hold every job");
            }
            drop(tx);
            let acc: u64 = rx.iter().fold(0, u64::wrapping_add);
            pool.shutdown();
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_budget, bench_scoped_map, bench_pool);
criterion_main!(benches);
