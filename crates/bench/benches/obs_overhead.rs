//! Cost of the observability layer.
//!
//! The `obs` registry is consulted on every span, counter and gauge in
//! the instrumented hot paths, so its disabled path has to be free for
//! the instrumentation to be acceptable in production runs. Two layers:
//!
//! * `obs/*` — the primitives in a tight loop. `baseline` is the loop
//!   body alone; `span_disabled` / `counter_disabled` add one obs call
//!   per iteration with no collector installed (one relaxed atomic
//!   load, single-digit nanoseconds per call); `span_null_collector`
//!   shows the enabled-path dispatch cost against a collector that
//!   records nothing.
//! * `flow/*` — the instrumented end-to-end flow on a small profile,
//!   disabled versus recording into a [`TraceCollector`]. The disabled
//!   number is the one the seed-parity acceptance criterion cares
//!   about; the enabled number bounds what `--trace` costs.
//!
//! `STTLOCK_BENCH_QUICK=1` trims the loop count for CI smoke runs.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::profiles;
use sttlock_core::Flow;
use sttlock_core::SelectionAlgorithm;
use sttlock_obs::{Collector, SpanData, TraceCollector};
use sttlock_techlib::Library;

fn quick() -> bool {
    std::env::var_os("STTLOCK_BENCH_QUICK").is_some()
}

/// Iterations of the primitive loop per bench iteration.
fn loop_n() -> u64 {
    if quick() {
        100
    } else {
        1000
    }
}

/// Enabled-path probe that aggregates nothing, so the measurement is
/// pure dispatch (virtual call + span bookkeeping), not `Vec` growth.
struct NullCollector;

impl Collector for NullCollector {
    fn span_close(&self, span: &SpanData) {
        black_box(span.duration_us);
    }
    fn counter_add(&self, name: &'static str, delta: u64) {
        black_box((name, delta));
    }
    fn gauge_add(&self, name: &'static str, delta: i64) {
        black_box((name, delta));
    }
    fn observe_us(&self, name: &'static str, value_us: u64) {
        black_box((name, value_us));
    }
}

fn bench_primitives(c: &mut Criterion) {
    let n = loop_n();
    let mut group = c.benchmark_group("obs");
    group.sample_size(20);

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    // No collector installed: `span!` costs one relaxed load and
    // skips field evaluation entirely.
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let _s = sttlock_obs::span!("bench.iter", i = i);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    group.bench_function("counter_disabled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                sttlock_obs::counter("bench.count", 1);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        })
    });

    group.bench_function("span_null_collector", |b| {
        sttlock_obs::install(Arc::new(NullCollector));
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                let _s = sttlock_obs::span!("bench.iter", i = i);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        sttlock_obs::uninstall();
    });

    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let profile = profiles::by_name("s641").unwrap();
    let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
    let flow = Flow::new(Library::predictive_90nm());
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);

    group.bench_function("disabled", |b| {
        b.iter(|| {
            flow.run(&netlist, SelectionAlgorithm::ParametricAware, 7)
                .unwrap()
        })
    });

    group.bench_function("traced", |b| {
        let collector = TraceCollector::new();
        sttlock_obs::install(collector);
        b.iter(|| {
            flow.run(&netlist, SelectionAlgorithm::ParametricAware, 7)
                .unwrap()
        });
        sttlock_obs::uninstall();
    });

    group.finish();
}

criterion_group!(benches, bench_primitives, bench_flow);
criterion_main!(benches);
