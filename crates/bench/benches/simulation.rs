//! Bit-parallel simulator throughput: cycles/second on the benchmark
//! profiles, and the CMOS-vs-hybrid comparison showing that LUT
//! insertion does not slow the attacker's oracle (relevant to the attack
//! cost models, which charge per pattern, not per gate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_benchgen::profiles;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_sim::Simulator;
use sttlock_techlib::Library;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    for profile in profiles::up_to(700) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let n_inputs = netlist.inputs().len();
        // 64 lanes x 32 cycles per iteration.
        group.throughput(Throughput::Elements(64 * 32));
        group.bench_with_input(BenchmarkId::new("cmos", profile.name), &netlist, |b, n| {
            let mut sim = Simulator::new(n).expect("programmed netlist");
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                for _ in 0..32 {
                    let pat: Vec<u64> = (0..n_inputs).map(|_| rng.gen()).collect();
                    sim.step(&pat).expect("arity matches");
                }
            })
        });
    }

    // Hybrid netlist simulates at comparable speed.
    let profile = profiles::by_name("s1488").expect("known profile");
    let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
    let flow = Flow::new(Library::predictive_90nm());
    let hybrid = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 42)
        .expect("flow succeeds")
        .hybrid;
    let n_inputs = hybrid.inputs().len();
    group.throughput(Throughput::Elements(64 * 32));
    group.bench_function(BenchmarkId::new("hybrid", profile.name), |b| {
        let mut sim = Simulator::new(&hybrid).expect("programmed hybrid");
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            for _ in 0..32 {
                let pat: Vec<u64> = (0..n_inputs).map(|_| rng.gen()).collect();
                sim.step(&pat).expect("arity matches");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
