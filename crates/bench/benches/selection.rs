//! Criterion bench behind Table II: selection-algorithm runtime per
//! benchmark circuit. Runs the small/mid profiles so a full `cargo
//! bench` stays laptop-friendly; the `table2` binary covers the full
//! suite with wall-clock timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::profiles;
use sttlock_core::select::{self, SelectionConfig};
use sttlock_core::SelectionAlgorithm;
use sttlock_netlist::CircuitView;
use sttlock_sta::analyze;
use sttlock_techlib::Library;

fn bench_selection(c: &mut Criterion) {
    let lib = Library::predictive_90nm();
    let cfg = SelectionConfig::default();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for profile in profiles::up_to(700) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let timing = analyze(&netlist, &lib);
        for alg in SelectionAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.short_name(), profile.name),
                &netlist,
                |b, n| {
                    b.iter(|| {
                        // Fresh view per iteration: the timing includes
                        // the one-off graph-fact computation, like the
                        // per-circuit cost a flow run pays.
                        let view = CircuitView::new(n);
                        let mut rng = StdRng::seed_from_u64(7);
                        match alg {
                            SelectionAlgorithm::Independent => {
                                select::independent(&view, &timing, &cfg, &mut rng)
                            }
                            SelectionAlgorithm::Dependent => {
                                select::dependent(&view, &timing, &cfg, &mut rng)
                            }
                            SelectionAlgorithm::ParametricAware => {
                                select::parametric(&view, &lib, &timing, &cfg, &mut rng)
                            }
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
