//! Memoized `CircuitView` vs. fresh per-consumer graph recomputation,
//! and copy-on-write `HybridOverlay` vs. clone-then-mutate hybrids.
//!
//! Before the shared analysis layer, every consumer (simulator, STA,
//! path sampler, USL closure) recomputed the fanout map and topological
//! order from scratch. `circuit_view/fresh` times that historical cost;
//! `circuit_view/memoized` times the same queries answered from a warm
//! view; `circuit_view/build` times one cold view (the one-off cost a
//! flow run pays per circuit).
//!
//! Set `STTLOCK_BENCH_QUICK=1` for the CI smoke configuration: fewer
//! samples and only the small profile.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::{profiles, Profile};
use sttlock_netlist::{graph, CircuitView, HybridOverlay, Netlist, NodeId};

fn quick() -> bool {
    std::env::var_os("STTLOCK_BENCH_QUICK").is_some()
}

fn bench_profiles() -> Vec<Profile> {
    let mut v = vec![profiles::by_name("s1238").unwrap()];
    if !quick() {
        v.push(profiles::by_name("s9234a").unwrap());
    }
    v
}

fn bench_graph_facts(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_view");
    group.sample_size(if quick() { 10 } else { 30 });
    for profile in bench_profiles() {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));

        // The pre-refactor pattern: each consumer recomputes the facts.
        group.bench_with_input(BenchmarkId::new("fresh", profile.name), &netlist, |b, n| {
            b.iter(|| {
                let fanout = graph::fanout_map(n);
                let topo = graph::topo_order(n);
                let levels = graph::levels(n);
                (fanout.len(), topo.len(), levels.len())
            })
        });

        // The shared-view pattern: facts computed once, then served.
        group.bench_with_input(
            BenchmarkId::new("memoized", profile.name),
            &netlist,
            |b, n| {
                let view = CircuitView::new(n);
                b.iter(|| {
                    (
                        view.fanout().len(),
                        view.topo_order().len(),
                        view.levels().len(),
                    )
                })
            },
        );

        // Cold-view cost: what one flow run pays per circuit.
        group.bench_with_input(BenchmarkId::new("build", profile.name), &netlist, |b, n| {
            b.iter(|| {
                let view = CircuitView::new(n);
                (view.fanout().len(), view.topo_order().len())
            })
        });
    }
    group.finish();
}

/// Gates a selection would replace: every third narrow standard cell.
fn lut_targets(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(_, n)| n.gate_kind().is_some() && n.fanin().len() >= 2 && n.fanin().len() <= 6)
        .map(|(id, _)| id)
        .step_by(3)
        .take(64)
        .collect()
}

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    group.sample_size(if quick() { 10 } else { 30 });
    for profile in bench_profiles() {
        let base = Arc::new(profile.generate(&mut StdRng::seed_from_u64(42)));
        let targets = lut_targets(&base);

        // Legacy: clone the whole arena, mutate in place.
        group.bench_with_input(
            BenchmarkId::new("clone_mutate", profile.name),
            &base,
            |b, n| {
                b.iter(|| {
                    let mut hybrid = (**n).clone();
                    for &id in &targets {
                        hybrid.replace_gate_with_lut(id).unwrap();
                    }
                    hybrid.lut_count()
                })
            },
        );

        // Copy-on-write: sparse edits over the shared base. This is what
        // the attack's hypothesis loop holds per candidate.
        group.bench_with_input(
            BenchmarkId::new("overlay_edit", profile.name),
            &base,
            |b, n| {
                b.iter(|| {
                    let mut overlay = HybridOverlay::new(Arc::clone(n));
                    for &id in &targets {
                        overlay.replace_gate_with_lut(id).unwrap();
                    }
                    overlay.edit_count()
                })
            },
        );

        // Overlay plus materialization — the full-owned-netlist path,
        // differentially equal to clone_mutate.
        group.bench_with_input(
            BenchmarkId::new("overlay_materialize", profile.name),
            &base,
            |b, n| {
                b.iter(|| {
                    let mut overlay = HybridOverlay::new(Arc::clone(n));
                    for &id in &targets {
                        overlay.replace_gate_with_lut(id).unwrap();
                    }
                    overlay.materialize().lut_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_facts, bench_overlay);
criterion_main!(benches);
