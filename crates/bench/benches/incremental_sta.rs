//! Incremental vs. full-reanalysis timing for parametric-aware
//! selection (Algorithm 2).
//!
//! Two layers:
//!
//! * `probe/*` — the raw oracle question ("what is the period if this
//!   one gate becomes a LUT?") answered by `IncrementalSta::batch_eval`
//!   versus a scratch-netlist `analyze` per candidate. This isolates the
//!   engine speedup from path sampling.
//! * `selection/*` — the full `parametric` run (sampling included)
//!   against `parametric_full_sta`, the pre-incremental reference. This
//!   is the end-to-end Table II measurement; for a fixed seed both
//!   produce byte-identical selections, which the harness asserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::{profiles, Profile};
use sttlock_core::select::{parametric, parametric_full_sta, SelectionConfig};
use sttlock_netlist::{CircuitView, NodeId};
use sttlock_sta::{analyze, IncrementalSta};
use sttlock_techlib::Library;

/// `STTLOCK_BENCH_QUICK=1` — CI smoke configuration: only the small
/// profile (the full-reanalysis reference on s9234a costs seconds per
/// iteration).
fn bench_profiles() -> Vec<Profile> {
    let mut v = vec![profiles::by_name("s1238").unwrap()];
    if std::env::var_os("STTLOCK_BENCH_QUICK").is_none() {
        v.push(profiles::by_name("s9234a").unwrap());
    }
    v
}

/// Every narrow standard cell — the population `batch_eval` probes.
fn probe_candidates(netlist: &sttlock_netlist::Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(_, n)| n.gate_kind().is_some() && n.fanin().len() <= 6)
        .map(|(id, _)| id)
        .take(256)
        .collect()
}

fn bench_probes(c: &mut Criterion) {
    let lib = Library::predictive_90nm();
    let mut group = c.benchmark_group("probe");
    group.sample_size(10);
    for profile in bench_profiles() {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let candidates = probe_candidates(&netlist);

        group.bench_with_input(
            BenchmarkId::new("incremental", profile.name),
            &netlist,
            |b, n| {
                let engine = IncrementalSta::new(n, &lib);
                b.iter(|| engine.batch_eval(&candidates));
            },
        );
        group.bench_with_input(BenchmarkId::new("full", profile.name), &netlist, |b, n| {
            b.iter(|| {
                let mut scratch = n.clone();
                let mut worst: f64 = 0.0;
                for &id in &candidates {
                    let kind = n.node(id).gate_kind().unwrap();
                    scratch.replace_gate_with_lut(id).unwrap();
                    worst = worst.max(analyze(&scratch, &lib).clock_period_ns());
                    scratch.restore_lut_to_gate(id, kind);
                }
                worst
            })
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let lib = Library::predictive_90nm();
    let cfg = SelectionConfig::default();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for profile in bench_profiles() {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
        let timing = analyze(&netlist, &lib);

        // Both paths must answer identically before timing them.
        let check_view = CircuitView::new(&netlist);
        let fast = parametric(
            &check_view,
            &lib,
            &timing,
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        let reference = parametric_full_sta(
            &check_view,
            &lib,
            &timing,
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(fast, reference, "oracles diverged on {}", profile.name);

        // Fresh view per iteration so the one-off graph-fact cost is
        // part of the measurement, matching what a flow run pays.
        group.bench_with_input(
            BenchmarkId::new("incremental", profile.name),
            &netlist,
            |b, n| {
                b.iter(|| {
                    let view = CircuitView::new(n);
                    parametric(&view, &lib, &timing, &cfg, &mut StdRng::seed_from_u64(7))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full", profile.name), &netlist, |b, n| {
            b.iter(|| {
                let view = CircuitView::new(n);
                parametric_full_sta(&view, &lib, &timing, &cfg, &mut StdRng::seed_from_u64(7))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probes, bench_selection);
criterion_main!(benches);
