//! Cost of the persistence layer.
//!
//! The record log sits under the campaign journal (fsync-per-record)
//! and the serve response cache (no implicit fsync), so two numbers
//! matter: append throughput per [`FsyncPolicy`], and the open-with-
//! recovery scan that every process start pays. `compact` bounds the
//! boot-time rewrite the caches do when replay finds dead weight.
//!
//! `STTLOCK_BENCH_QUICK=1` trims record counts for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sttlock_store::{read_all, FsyncPolicy, RecordLog};

fn quick() -> bool {
    std::env::var_os("STTLOCK_BENCH_QUICK").is_some()
}

/// Records appended (or pre-seeded) per measured iteration.
fn record_n() -> usize {
    if quick() {
        64
    } else {
        512
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-store-bench")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A payload the size of a typical campaign journal entry.
fn payload(i: usize) -> Vec<u8> {
    format!(
        "{{\"schema\":1,\"record\":{{\"circuit\":\"bench-{i}\",\"seed\":{i},\
         \"status\":\"ok\",\"wall_ms\":{},\"metrics\":[0.1,0.2,0.3,0.4]}}}}",
        i * 7
    )
    .into_bytes()
}

fn bench_append(c: &mut Criterion) {
    let n = record_n();
    let mut group = c.benchmark_group("store_log/append");
    group.sample_size(10);

    // The cache setting: appends ride the OS page cache.
    group.bench_function("fsync_never", |b| {
        let dir = tmp_dir("append-never");
        b.iter(|| {
            let path = dir.join("log");
            let _ = std::fs::remove_file(&path);
            let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
            for i in 0..n {
                opened.log.append(&payload(i)).unwrap();
            }
            opened.log.len_bytes()
        })
    });

    // Batched durability: one fsync per 16 records.
    group.bench_function("fsync_every16", |b| {
        let dir = tmp_dir("append-batch");
        b.iter(|| {
            let path = dir.join("log");
            let _ = std::fs::remove_file(&path);
            let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::EveryN(16)).unwrap();
            for i in 0..n {
                opened.log.append(&payload(i)).unwrap();
            }
            opened.log.len_bytes()
        })
    });

    // The journal setting: every record is durable before the append
    // returns. Fewer records — each iteration is n real fsyncs.
    group.bench_function("fsync_always", |b| {
        let dir = tmp_dir("append-always");
        let n = n / 8;
        b.iter(|| {
            let path = dir.join("log");
            let _ = std::fs::remove_file(&path);
            let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..n {
                opened.log.append(&payload(i)).unwrap();
            }
            opened.log.len_bytes()
        })
    });

    group.finish();
}

fn bench_open(c: &mut Criterion) {
    let n = record_n();
    let mut group = c.benchmark_group("store_log/open");
    group.sample_size(10);

    // Pre-seed one log; every open re-scans and CRC-checks all of it.
    let dir = tmp_dir("open");
    let path = dir.join("log");
    {
        let mut opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..n {
            opened.log.append(&payload(i)).unwrap();
        }
    }

    group.bench_function("recovery_scan", |b| {
        b.iter(|| {
            let opened = RecordLog::<Vec<u8>>::open(&path, FsyncPolicy::Never).unwrap();
            black_box(opened.records.len())
        })
    });

    group.bench_function("read_all", |b| {
        b.iter(|| {
            let (records, report) = read_all::<Vec<u8>>(&path).unwrap();
            black_box((records.len(), report.kept_bytes))
        })
    });

    group.bench_function("compact", |b| {
        let records: Vec<Vec<u8>> = (0..n / 2).map(payload).collect();
        let mut opened =
            RecordLog::<Vec<u8>>::open(dir.join("compact"), FsyncPolicy::Never).unwrap();
        b.iter(|| {
            opened.log.compact(&records).unwrap();
            opened.log.len_bytes()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_append, bench_open);
criterion_main!(benches);
