//! Analysis-engine micro-benchmarks: power analysis, activity
//! estimation, logic optimization and SAT equivalence checking — the
//! building blocks whose scaling determines how large a design the flow
//! handles interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::profiles;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_opt::optimize;
use sttlock_power::analyze_power;
use sttlock_sat::equiv::check_equivalence;
use sttlock_sim::activity::estimate_activity;
use sttlock_sim::probability::signal_probabilities;
use sttlock_techlib::Library;

fn bench_analysis(c: &mut Criterion) {
    let lib = Library::predictive_90nm();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);

    for profile in profiles::up_to(700).into_iter().step_by(3) {
        let netlist = profile.generate(&mut StdRng::seed_from_u64(42));

        group.bench_with_input(
            BenchmarkId::new("activity_256c", profile.name),
            &netlist,
            |b, n| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    estimate_activity(n, 256, &mut rng).expect("programmed netlist")
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("signal_probabilities", profile.name),
            &netlist,
            |b, n| b.iter(|| signal_probabilities(n)),
        );

        let mut rng = StdRng::seed_from_u64(1);
        let act = estimate_activity(&netlist, 256, &mut rng).expect("programmed netlist");
        group.bench_with_input(BenchmarkId::new("power", profile.name), &netlist, |b, n| {
            b.iter(|| analyze_power(n, &lib, &act))
        });

        group.bench_with_input(
            BenchmarkId::new("optimize", profile.name),
            &netlist,
            |b, n| b.iter(|| optimize(n).expect("valid rewrite")),
        );
    }

    // Equivalence proof: original vs its parametric hybrid.
    let profile = profiles::by_name("s953").expect("known profile");
    let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
    let flow = Flow::new(lib);
    let hybrid = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 42)
        .expect("flow runs")
        .hybrid;
    group.bench_function(BenchmarkId::new("sat_equivalence", profile.name), |b| {
        b.iter(|| check_equivalence(&netlist, &hybrid).expect("interfaces match"))
    });

    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
