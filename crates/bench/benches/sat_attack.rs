//! SAT-attack effort scaling: DIP iterations and wall time versus the
//! number of missing gates, under full-scan access. The steep growth is
//! the quantitative backdrop to the paper's "lock the scan chain"
//! argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::sat_attack::{self, SatAttackConfig};
use sttlock_benchgen::Profile;
use sttlock_core::{Flow, SelectionAlgorithm};
use sttlock_netlist::Netlist;
use sttlock_techlib::Library;

fn locked_pair(luts: usize) -> (Netlist, Netlist) {
    let profile = Profile::custom("satbench", 120, 5, 8, 6);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(42));
    let mut flow = Flow::new(Library::predictive_90nm());
    flow.selection.independent_gates = luts;
    let out = flow
        .run(&netlist, SelectionAlgorithm::Independent, 42)
        .expect("flow succeeds");
    let redacted = out.foundry_view();
    (redacted, out.hybrid)
}

fn bench_sat_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_attack");
    group.sample_size(10);
    for luts in [2usize, 4, 8] {
        let (redacted, oracle) = locked_pair(luts);
        group.bench_with_input(
            BenchmarkId::from_parameter(luts),
            &(redacted, oracle),
            |b, (r, o)| {
                b.iter(|| {
                    let out =
                        sat_attack::run(r, o, &SatAttackConfig::default()).expect("attack runs");
                    assert!(out.succeeded());
                    out.dips
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat_attack);
criterion_main!(benches);
