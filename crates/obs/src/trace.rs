//! The batteries-included [`Collector`]: span recorder, metric
//! aggregator, JSONL trace exporter and text summary renderer.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{Collector, FieldValue, SpanData};

/// Power-of-two duration buckets: bucket `k` covers `[2^(k-1), 2^k)`
/// microseconds (bucket 0 is `< 1 µs`).
const BUCKETS: usize = 40;

/// A log₂-bucketed duration histogram (shared with the aggregate-only
/// [`MetricsCollector`](crate::MetricsCollector)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hist {
    pub(crate) count: u64,
    pub(crate) sum_us: u64,
    pub(crate) min_us: u64,
    pub(crate) max_us: u64,
    buckets: [u64; BUCKETS],
}

impl Hist {
    pub(crate) fn new() -> Hist {
        Hist {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; BUCKETS],
        }
    }

    pub(crate) fn observe(&mut self, us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        let b = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b] += 1;
    }

    /// Upper bound of the bucket holding the `q`-quantile observation —
    /// an approximation within a factor of two, which is what a
    /// where-did-the-time-go summary needs.
    pub(crate) fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 1 } else { 1u64 << b }.min(self.max_us);
            }
        }
        self.max_us
    }

    pub(crate) fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanData>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (i64, i64)>, // (current, peak)
    hists: BTreeMap<String, Hist>,
}

/// In-memory collector: keeps every closed span, aggregates counters,
/// gauges (with peaks) and duration histograms (per span name plus
/// every [`observe_us`](crate::observe_us) stream), and renders the lot
/// as a JSONL trace or a text summary.
#[derive(Debug, Default)]
pub struct TraceCollector {
    state: Mutex<State>,
}

impl TraceCollector {
    /// A fresh collector, ready for [`install`](crate::install).
    pub fn new() -> Arc<TraceCollector> {
        Arc::new(TraceCollector::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panicking instrumented thread must not wedge the trace:
        // every mutation below keeps the state valid, so recover.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Every span closed so far (collection order).
    pub fn spans(&self) -> Vec<SpanData> {
        self.lock().spans.clone()
    }

    /// Current value of the counter `name` (0 when never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name` (0 when never moved).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.lock().gauges.get(name).map_or(0, |&(cur, _)| cur)
    }

    /// The JSONL trace: one `span` line per closed span (with `id` /
    /// `parent` for tree reconstruction), then aggregated `counter`,
    /// `gauge` and `hist` lines. Every line is a standalone JSON object.
    pub fn to_jsonl(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for s in &state.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", s.id);
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"fields\":{{",
                escape(s.name),
                s.start_us,
                s.duration_us
            );
            for (i, (k, v)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", escape(k));
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::F64(x) if x.is_finite() => {
                        let _ = write!(out, "{x}");
                    }
                    FieldValue::F64(_) => out.push_str("null"),
                    FieldValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                    FieldValue::Str(t) => {
                        let _ = write!(out, "\"{}\"", escape(t));
                    }
                }
            }
            out.push_str("}}\n");
        }
        for (name, value) in &state.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                escape(name)
            );
        }
        for (name, (current, peak)) in &state.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{current},\"peak\":{peak}}}",
                escape(name)
            );
        }
        for (name, h) in &state.hists {
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum_us\":{},\"min_us\":{},\"p50_us\":{},\"p95_us\":{},\"max_us\":{}}}",
                escape(name),
                h.count,
                h.sum_us,
                if h.count == 0 { 0 } else { h.min_us },
                h.quantile_us(0.50),
                h.quantile_us(0.95),
                h.max_us
            );
        }
        out
    }

    /// Human-readable roll-up: per-name span timings (count, total,
    /// mean, ~p95, max — quantiles from log₂ buckets, so within 2×),
    /// then counters and gauges.
    pub fn summary(&self) -> String {
        let state = self.lock();
        let mut out = String::from("== obs summary ==\n");
        if !state.hists.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>10} {:>10} {:>10}\n",
                "span/histogram", "count", "total", "mean", "~p95", "max"
            ));
            for (name, h) in &state.hists {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>12} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    fmt_us(h.sum_us),
                    fmt_us(h.mean_us()),
                    fmt_us(h.quantile_us(0.95)),
                    fmt_us(h.max_us)
                ));
            }
        }
        if !state.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &state.counters {
                out.push_str(&format!("  {name:<30} {value}\n"));
            }
        }
        if !state.gauges.is_empty() {
            out.push_str("gauges (current / peak):\n");
            for (name, (current, peak)) in &state.gauges {
                out.push_str(&format!("  {name:<30} {current} / {peak}\n"));
            }
        }
        out
    }
}

impl Collector for TraceCollector {
    fn span_close(&self, span: &SpanData) {
        let mut state = self.lock();
        state
            .hists
            .entry(span.name.to_owned())
            .or_insert_with(Hist::new)
            .observe(span.duration_us);
        state.spans.push(span.clone());
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut state = self.lock();
        *state.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_add(&self, name: &'static str, delta: i64) {
        let mut state = self.lock();
        let entry = state.gauges.entry(name).or_insert((0, 0));
        entry.0 += delta;
        entry.1 = entry.1.max(entry.0);
    }

    fn observe_us(&self, name: &'static str, value_us: u64) {
        let mut state = self.lock();
        state
            .hists
            .entry(name.to_owned())
            .or_insert_with(Hist::new)
            .observe(value_us);
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span, test_lock, uninstall};

    #[test]
    fn histogram_quantiles_bracket_the_observations() {
        let mut h = Hist::new();
        for us in [1u64, 2, 4, 100, 100, 100, 100, 100, 100, 5000] {
            h.observe(us);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.min_us, 1);
        assert_eq!(h.max_us, 5000);
        let p50 = h.quantile_us(0.5);
        assert!((64..=256).contains(&p50), "p50 ~100µs, got {p50}");
        assert!(h.quantile_us(1.0) >= 4096);
        assert_eq!(Hist::new().quantile_us(0.5), 0);
    }

    #[test]
    fn jsonl_lines_are_parseable_and_carry_the_tree() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        {
            let _outer = span!("outer", label = "a\"b");
            let _inner = span!("inner", n = 2u64);
        }
        crate::counter("hits", 3);
        crate::gauge("live", 5);
        crate::observe_us("wait", 120);
        uninstall();

        let jsonl = collector.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 spans + 1 counter + 1 gauge + 3 hists (outer, inner, wait).
        assert_eq!(lines.len(), 7, "{jsonl}");
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"label\":\"a\\\"b\""));
        assert!(jsonl.contains("\"type\":\"counter\",\"name\":\"hits\",\"value\":3"));
        assert!(jsonl.contains("\"type\":\"gauge\",\"name\":\"live\",\"value\":5,\"peak\":5"));
        assert!(jsonl.contains("\"type\":\"hist\",\"name\":\"wait\""));
        // The inner span's parent id points at the outer span's id.
        let spans = collector.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert!(jsonl.contains(&format!("\"parent\":{},\"name\":\"inner\"", outer.id)));
    }

    #[test]
    fn summary_mentions_every_metric_kind() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        {
            let _s = span!("stage");
        }
        crate::counter("stage.retries", 2);
        crate::gauge("stage.live", 1);
        crate::gauge("stage.live", -1);
        uninstall();
        let text = collector.summary();
        assert!(text.contains("obs summary"), "{text}");
        assert!(text.contains("stage"), "{text}");
        assert!(text.contains("stage.retries"), "{text}");
        assert!(text.contains("0 / 1"), "gauge current/peak: {text}");
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
