//! Zero-dependency structured observability for the sttlock runtime.
//!
//! The campaign engine runs thousands of isolated cells per sweep; when
//! one of them leaks a thread, aborts a sibling, or spends its budget in
//! an unexpected stage, nothing in a JSONL record says *where* the time
//! or the failure went. This crate adds the missing layer:
//!
//! * **hierarchical spans** — [`span!`] opens a named, field-carrying
//!   span whose guard records the duration on drop; spans nest through a
//!   thread-local stack, and [`current_context`]/[`adopt`] carry the
//!   parentage across thread boundaries (the campaign runner's detached
//!   cell threads);
//! * **monotonic counters** ([`counter`]), **gauges** ([`gauge`]) and
//!   **explicit duration histograms** ([`observe_us`]);
//! * a [`Collector`] trait behind a process-global registry
//!   ([`install`]/[`uninstall`]). The default state is *disabled*: every
//!   instrumentation call is gated on one relaxed atomic load and does
//!   no allocation, no locking, and no field evaluation — the
//!   `obs_overhead` criterion bench pins the disabled cost in the noise.
//!
//! [`TraceCollector`] is the batteries-included sink: it aggregates
//! counters/gauges/histograms, keeps every closed span, and renders
//! either a JSONL trace (one event per line, reconstructable into the
//! span tree through the `id`/`parent` fields) or a human `summary()`
//! table. The CLI exposes it as `--trace <path>` / `--trace-summary` on
//! the `campaign` and `faults` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{Fanout, MetricsCollector};
pub use trace::TraceCollector;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// One field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $conv)
            }
        })+
    };
}

field_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A closed span as delivered to [`Collector::span_close`]: identity,
/// parentage, timing, and the fields recorded while it was open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id, if any — follows [`adopt`]ed contexts across
    /// threads.
    pub parent: Option<u64>,
    /// Static span name, e.g. `campaign.cell`.
    pub name: &'static str,
    /// Fields attached at open time plus any [`SpanGuard::record`]ed
    /// later.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Open timestamp, microseconds since the process obs epoch.
    pub start_us: u64,
    /// Open-to-close wall time, microseconds.
    pub duration_us: u64,
}

/// The sink side of the registry. Implementations must be cheap and
/// non-blocking where possible: calls arrive from hot loops on many
/// threads (only while a collector is installed).
pub trait Collector: Send + Sync {
    /// A span closed (its guard dropped). `span` carries start, duration
    /// and parent, which is enough to rebuild the tree — open events are
    /// deliberately not delivered.
    fn span_close(&self, span: &SpanData);
    /// Monotonic counter increment.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Gauge delta (may be negative; the current value is the running
    /// sum).
    fn gauge_add(&self, name: &'static str, delta: i64);
    /// Explicit histogram observation, microseconds (for durations that
    /// are not spans, e.g. queue wait measured after the fact).
    fn observe_us(&self, name: &'static str, value_us: u64);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Open-span stack of this thread; the top is the parent of the next
    /// span. Adopted foreign parents ([`adopt`]) are pushed like local
    /// spans.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Installs `collector` as the process-global sink and enables every
/// instrumentation site. Replaces any previous collector.
pub fn install(collector: Arc<dyn Collector>) {
    // Touch the epoch before enabling so start_us timestamps are
    // monotonic with respect to one another from the first span on.
    let _ = epoch();
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = Some(collector);
    ENABLED.store(true, Ordering::Release);
}

/// Disables instrumentation and drops the collector reference. Spans
/// still open keep their stack bookkeeping but their close events are
/// discarded.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *COLLECTOR.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a collector is installed — the one-load fast path every
/// instrumentation macro checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_collector(f: impl FnOnce(&dyn Collector)) {
    if !enabled() {
        return;
    }
    let guard = COLLECTOR.read().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = guard.as_deref() {
        f(c);
    }
}

/// Adds `delta` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_collector(|c| c.counter_add(name, delta));
    }
}

/// Adds `delta` (possibly negative) to the gauge `name`. No-op when
/// disabled.
#[inline]
pub fn gauge(name: &'static str, delta: i64) {
    if enabled() {
        with_collector(|c| c.gauge_add(name, delta));
    }
}

/// Records one explicit histogram observation under `name`,
/// microseconds. No-op when disabled.
#[inline]
pub fn observe_us(name: &'static str, value_us: u64) {
    if enabled() {
        with_collector(|c| c.observe_us(name, value_us));
    }
}

/// A portable handle to the current span, for parenting spans opened on
/// another thread (the campaign's detached cell threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    parent: Option<u64>,
}

/// The innermost open span of this thread as a [`SpanContext`]; pass it
/// to [`adopt`] on the thread that should inherit it.
pub fn current_context() -> SpanContext {
    SpanContext {
        parent: SPAN_STACK.with(|s| s.borrow().last().copied()),
    }
}

/// Guard returned by [`adopt`]; pops the foreign parent on drop.
#[derive(Debug)]
pub struct ContextGuard {
    pushed: bool,
}

/// Makes `ctx`'s span the parent of spans subsequently opened on *this*
/// thread, until the returned guard drops.
pub fn adopt(ctx: SpanContext) -> ContextGuard {
    if let Some(parent) = ctx.parent {
        SPAN_STACK.with(|s| s.borrow_mut().push(parent));
        ContextGuard { pushed: true }
    } else {
        ContextGuard { pushed: false }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// An open span; created by [`span!`] (or [`SpanGuard::start`]), closed
/// on drop. The disabled form ([`SpanGuard::disabled`]) is a unit-sized
/// no-op.
#[derive(Debug)]
pub struct SpanGuard {
    info: Option<SpanInfo>,
}

#[derive(Debug)]
struct SpanInfo {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    started: Instant,
    start_us: u64,
}

impl SpanGuard {
    /// Opens a span as a child of this thread's innermost open (or
    /// adopted) span. Prefer the [`span!`] macro, which skips field
    /// evaluation entirely when disabled.
    pub fn start(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        if !enabled() {
            return SpanGuard::disabled();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard {
            info: Some(SpanInfo {
                id,
                parent,
                name,
                fields,
                started: Instant::now(),
                start_us: now_us(),
            }),
        }
    }

    /// The inert guard the disabled path returns.
    pub fn disabled() -> SpanGuard {
        SpanGuard { info: None }
    }

    /// Attaches a field after the span opened (e.g. a result computed
    /// mid-span). No-op on a disabled guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(info) = &mut self.info {
            info.fields.push((key, value.into()));
        }
    }

    /// This span's id, if live (tests and manual parenting).
    pub fn id(&self) -> Option<u64> {
        self.info.as_ref().map(|i| i.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(info) = self.info.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally the top of the stack; sweep defensively in case a
            // guard outlived an enclosing one (drop-order mistakes must
            // not corrupt parentage for the rest of the thread).
            if let Some(pos) = stack.iter().rposition(|&id| id == info.id) {
                stack.remove(pos);
            }
        });
        let data = SpanData {
            id: info.id,
            parent: info.parent,
            name: info.name,
            fields: info.fields,
            start_us: info.start_us,
            duration_us: info.started.elapsed().as_micros() as u64,
        };
        with_collector(|c| c.span_close(&data));
    }
}

/// Opens a hierarchical span: `span!("verify_round", round = r)`.
///
/// Evaluates to a [`SpanGuard`] closing the span on drop. When no
/// collector is installed the field expressions are **not evaluated**
/// and nothing allocates — the whole call is one atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::start(
                $name,
                ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The registry is process-global; tests that install a collector
    // must not interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_cost_nothing_and_do_not_evaluate_fields() {
        let _guard = test_lock();
        uninstall();
        let mut evaluated = false;
        {
            let _s = span!(
                "noop",
                x = {
                    evaluated = true;
                    1u64
                }
            );
        }
        assert!(!evaluated, "fields must not evaluate when disabled");
        counter("noop.counter", 1);
        gauge("noop.gauge", 1);
        observe_us("noop.hist", 1);
    }

    #[test]
    fn spans_nest_and_report_to_the_collector() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        {
            let mut outer = span!("outer", kind = "test");
            outer.record("extra", 7u64);
            {
                let _inner = span!("inner", idx = 3u64);
            }
        }
        counter("c.hits", 2);
        counter("c.hits", 3);
        gauge("g.live", 2);
        gauge("g.live", -2);
        observe_us("h.wait", 40);
        uninstall();

        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.fields.contains(&("extra", FieldValue::U64(7))));
        assert!(outer.duration_us >= inner.duration_us);
        assert_eq!(collector.counter_value("c.hits"), 5);
        assert_eq!(collector.gauge_value("g.live"), 0);
    }

    #[test]
    fn adopt_carries_parentage_across_threads() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        {
            let _root = span!("root");
            let ctx = current_context();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _adopted = adopt(ctx);
                    let _child = span!("child");
                });
            });
        }
        uninstall();
        let spans = collector.spans();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn adopting_an_empty_context_is_a_no_op() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        {
            let _adopted = adopt(SpanContext { parent: None });
            let _s = span!("orphan");
        }
        uninstall();
        assert_eq!(collector.spans()[0].parent, None);
    }

    #[test]
    fn uninstall_discards_late_closes_without_panicking() {
        let _guard = test_lock();
        let collector = TraceCollector::new();
        install(collector.clone());
        let s = span!("late");
        uninstall();
        drop(s); // collector gone: close event discarded, stack popped
        assert_eq!(collector.spans().len(), 0);
        // The thread-local stack is clean: a fresh span has no parent.
        install(collector.clone());
        {
            let _s = span!("fresh");
        }
        uninstall();
        assert_eq!(collector.spans()[0].parent, None);
    }

    #[test]
    fn field_values_convert_and_display() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x").to_string(), "x");
        assert_eq!(FieldValue::from(1.5f64).to_string(), "1.5");
    }
}
