//! Aggregate-only metric sinks for long-running processes.
//!
//! [`TraceCollector`](crate::TraceCollector) keeps every closed span,
//! which is the right trade for a bounded campaign run but an unbounded
//! memory leak for a resident service. [`MetricsCollector`] keeps only
//! the roll-ups — counters, gauges with peaks, and per-name log₂
//! duration histograms — and renders them as a stable line-oriented
//! text export for a `GET /metrics` endpoint. [`Fanout`] composes
//! sinks, so a service can aggregate metrics *and* stream a JSONL
//! trace when asked to.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::trace::Hist;
use crate::{Collector, SpanData};

#[derive(Debug, Default)]
struct MetricsState {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (i64, i64)>, // (current, peak)
    hists: BTreeMap<String, Hist>,
}

/// A [`Collector`] that aggregates and never retains individual spans:
/// memory use is bounded by the number of distinct metric names, so it
/// is safe to leave installed for the lifetime of a server process.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    state: Mutex<MetricsState>,
}

impl MetricsCollector {
    /// A fresh collector, ready for [`install`](crate::install).
    pub fn new() -> Arc<MetricsCollector> {
        Arc::new(MetricsCollector::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsState> {
        // A panicking instrumented thread must not wedge the registry;
        // every mutation keeps the state valid, so recover.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of the counter `name` (0 when never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name` (0 when never moved).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.lock().gauges.get(name).map_or(0, |&(cur, _)| cur)
    }

    /// Observation count of the histogram `name` (0 when absent).
    pub fn hist_count(&self, name: &str) -> u64 {
        self.lock().hists.get(name).map_or(0, |h| h.count)
    }

    /// Text export, one metric per line:
    ///
    /// ```text
    /// sttlock_counter{name="serve.accepted"} 12
    /// sttlock_gauge{name="serve.in_flight"} 0
    /// sttlock_gauge_peak{name="serve.in_flight"} 4
    /// sttlock_hist_count{name="serve.request"} 12
    /// sttlock_hist_sum_us{name="serve.request"} 83211
    /// sttlock_hist_p50_us{name="serve.request"} 4096
    /// sttlock_hist_p95_us{name="serve.request"} 16384
    /// sttlock_hist_max_us{name="serve.request"} 15321
    /// ```
    ///
    /// Names are emitted verbatim inside the label; ordering is the
    /// BTreeMap's, i.e. deterministic, so tests and CI can diff it.
    pub fn render_text(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for (name, value) in &state.counters {
            let _ = writeln!(out, "sttlock_counter{{name=\"{name}\"}} {value}");
        }
        for (name, (current, peak)) in &state.gauges {
            let _ = writeln!(out, "sttlock_gauge{{name=\"{name}\"}} {current}");
            let _ = writeln!(out, "sttlock_gauge_peak{{name=\"{name}\"}} {peak}");
        }
        for (name, h) in &state.hists {
            let _ = writeln!(out, "sttlock_hist_count{{name=\"{name}\"}} {}", h.count);
            let _ = writeln!(out, "sttlock_hist_sum_us{{name=\"{name}\"}} {}", h.sum_us);
            let _ = writeln!(
                out,
                "sttlock_hist_p50_us{{name=\"{name}\"}} {}",
                h.quantile_us(0.50)
            );
            let _ = writeln!(
                out,
                "sttlock_hist_p95_us{{name=\"{name}\"}} {}",
                h.quantile_us(0.95)
            );
            let _ = writeln!(out, "sttlock_hist_max_us{{name=\"{name}\"}} {}", h.max_us);
        }
        out
    }

    /// One-line digest for logs: total span count and the top counters.
    pub fn digest(&self) -> String {
        let state = self.lock();
        let spans: u64 = state.hists.values().map(|h| h.count).sum();
        format!(
            "{} counters, {} gauges, {} histograms, {} observations",
            state.counters.len(),
            state.gauges.len(),
            state.hists.len(),
            spans
        )
    }
}

impl Collector for MetricsCollector {
    fn span_close(&self, span: &SpanData) {
        let mut state = self.lock();
        state
            .hists
            .entry(span.name.to_owned())
            .or_insert_with(Hist::new)
            .observe(span.duration_us);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut state = self.lock();
        *state.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_add(&self, name: &'static str, delta: i64) {
        let mut state = self.lock();
        let entry = state.gauges.entry(name).or_insert((0, 0));
        entry.0 += delta;
        entry.1 = entry.1.max(entry.0);
    }

    fn observe_us(&self, name: &'static str, value_us: u64) {
        let mut state = self.lock();
        state
            .hists
            .entry(name.to_owned())
            .or_insert_with(Hist::new)
            .observe(value_us);
    }
}

/// Forwards every event to each wrapped sink, in order. Lets a server
/// run the bounded [`MetricsCollector`] always and add a
/// [`TraceCollector`](crate::TraceCollector) only when `--trace` asks
/// for the full span stream.
pub struct Fanout {
    sinks: Vec<Arc<dyn Collector>>,
}

impl Fanout {
    /// A fanout over `sinks` (empty is allowed and inert).
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> Arc<Fanout> {
        Arc::new(Fanout { sinks })
    }
}

impl Collector for Fanout {
    fn span_close(&self, span: &SpanData) {
        for s in &self.sinks {
            s.span_close(span);
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter_add(name, delta);
        }
    }

    fn gauge_add(&self, name: &'static str, delta: i64) {
        for s in &self.sinks {
            s.gauge_add(name, delta);
        }
    }

    fn observe_us(&self, name: &'static str, value_us: u64) {
        for s in &self.sinks {
            s.observe_us(name, value_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span, test_lock, uninstall, TraceCollector};

    #[test]
    fn render_text_round_trips_as_name_value_lines_without_duplicates() {
        // The text export is what `/metrics` serves and what the CI
        // smoke jobs diff; every line must parse as `series{name="X"} N`
        // and no (series, name) pair may repeat.
        let _guard = test_lock();
        let metrics = MetricsCollector::new();
        install(metrics.clone());
        {
            let _s = span!("serve.request", endpoint = "harden");
        }
        crate::counter("cluster.dispatch", 6);
        crate::counter("serve.accepted", 1);
        crate::gauge("serve.in_flight", 2);
        crate::observe_us("serve.queue_wait", 250);
        uninstall();

        let text = metrics.render_text();
        assert!(!text.is_empty());
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            let (series, rest) = line
                .split_once("{name=\"")
                .unwrap_or_else(|| panic!("line lacks a name label: `{line}`"));
            assert!(
                series.starts_with("sttlock_"),
                "unprefixed series in `{line}`"
            );
            let (name, value) = rest
                .split_once("\"} ")
                .unwrap_or_else(|| panic!("line lacks a value: `{line}`"));
            assert!(!name.is_empty(), "empty metric name in `{line}`");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value `{value}` in `{line}`"
            );
            assert!(
                seen.insert((series.to_owned(), name.to_owned())),
                "duplicate series `{line}`"
            );
        }
        // Spot-check the lines the exporters above must have produced.
        for needle in [
            "sttlock_counter{name=\"cluster.dispatch\"} 6",
            "sttlock_gauge{name=\"serve.in_flight\"} 2",
            "sttlock_hist_count{name=\"serve.queue_wait\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn metrics_collector_aggregates_without_retaining_spans() {
        let _guard = test_lock();
        let metrics = MetricsCollector::new();
        install(metrics.clone());
        {
            let _s = span!("serve.request", endpoint = "harden");
        }
        crate::counter("serve.accepted", 2);
        crate::gauge("serve.in_flight", 3);
        crate::gauge("serve.in_flight", -3);
        crate::observe_us("serve.queue_wait", 250);
        uninstall();

        assert_eq!(metrics.counter_value("serve.accepted"), 2);
        assert_eq!(metrics.gauge_value("serve.in_flight"), 0);
        assert_eq!(metrics.hist_count("serve.request"), 1);
        assert_eq!(metrics.hist_count("serve.queue_wait"), 1);

        let text = metrics.render_text();
        assert!(
            text.contains("sttlock_counter{name=\"serve.accepted\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sttlock_gauge{name=\"serve.in_flight\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("sttlock_gauge_peak{name=\"serve.in_flight\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sttlock_hist_count{name=\"serve.request\"} 1"),
            "{text}"
        );
        assert!(metrics.digest().contains("2 observations"), "digest");
    }

    #[test]
    fn render_text_is_deterministic_and_line_oriented() {
        let metrics = MetricsCollector::default();
        metrics.counter_add("b.second", 1);
        metrics.counter_add("a.first", 1);
        let text = metrics.render_text();
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "BTreeMap ordering: {text}");
        assert!(text.lines().all(|l| l.contains('{') && l.contains("} ")));
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        let _guard = test_lock();
        let metrics = MetricsCollector::new();
        let trace = TraceCollector::new();
        install(Fanout::new(vec![
            metrics.clone() as Arc<dyn Collector>,
            trace.clone() as Arc<dyn Collector>,
        ]));
        {
            let _s = span!("both");
        }
        crate::counter("both.hits", 4);
        uninstall();
        assert_eq!(metrics.counter_value("both.hits"), 4);
        assert_eq!(metrics.hist_count("both"), 1);
        assert_eq!(trace.counter_value("both.hits"), 4);
        assert_eq!(trace.spans().len(), 1, "trace still keeps spans");
    }
}
