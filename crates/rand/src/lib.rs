//! Workspace-local stand-in for the subset of the `rand` 0.8 API that
//! sttlock uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the same module paths, traits and method signatures
//! (`Rng::gen`/`gen_range`/`gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, `seq::SliceRandom`) backed by a small, fully
//! deterministic xoshiro256++ generator. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, but every consumer in this workspace
//! only relies on seeded determinism, not on a specific stream.
//!
//! Only the APIs the workspace actually calls are implemented; anything
//! else is intentionally absent so accidental reliance fails loudly at
//! compile time.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Integer ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        // Reject only the biased tail (lo < 2^64 mod span).
        if lo < span && lo < span.wrapping_neg() % span {
            continue;
        }
        return (m >> 64) as u64;
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly random value of `T` (upstream's `Standard` distribution).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniformly random value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (same entry point as
    /// upstream `rand`; every workspace call site uses this).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the ChaCha12 core of upstream `rand`; consumers only depend on
    /// seed-reproducibility, which this provides.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Iterator over the elements picked by
    /// [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements chosen without replacement (fewer
        /// if the slice is shorter), in randomized order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index permutation.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + super::uniform_u64(rng, (self.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "choices must be distinct");
        let over: Vec<u32> = pool.choose_multiple(&mut rng, 100).copied().collect();
        assert_eq!(over.len(), 50, "clamped to slice length");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "a 32-element shuffle virtually never fixes all");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn works_through_unsized_rng_refs() {
        // Mirrors the workspace's `R: Rng + ?Sized` call sites.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let r: &mut StdRng = &mut rng;
        let _ = draw(r);
        let _: bool = r.gen();
    }
}
