//! The optimizer's contract: the rewritten netlist is functionally
//! equivalent to the input. Proven with the SAT equivalence checker and
//! cross-checked by sequential simulation on random benchmark circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_benchgen::Profile;
use sttlock_opt::optimize;
use sttlock_sat::equiv::{check_equivalence, EquivResult};
use sttlock_sim::Simulator;

#[test]
fn random_circuits_stay_frame_equivalent() {
    // Frame equivalence needs the register interface intact, so disable
    // sweeping side effects by only comparing circuits whose flip-flops
    // all survive (constant-driven or dead flops may legitimately be
    // swept; those cases are covered by the sequential check below).
    for seed in 0..8u64 {
        let profile = Profile::custom("opt", 120, 6, 8, 6);
        let n = profile.generate(&mut StdRng::seed_from_u64(seed));
        let (opt, report) = optimize(&n).expect("optimize succeeds");
        assert!(opt.check_acyclic().is_ok());
        if opt.dff_count() == n.dff_count() {
            assert_eq!(
                check_equivalence(&n, &opt).expect("interfaces match"),
                EquivResult::Equivalent,
                "seed {seed}: optimizer changed the function ({report:?})"
            );
        }
    }
}

#[test]
fn random_circuits_stay_sequentially_equivalent() {
    // Black-box check that also covers register sweeping: identical
    // primary-output streams from reset for random stimulus.
    for seed in 8..16u64 {
        let profile = Profile::custom("opt", 150, 8, 7, 5);
        let n = profile.generate(&mut StdRng::seed_from_u64(seed));
        let (opt, _) = optimize(&n).expect("optimize succeeds");
        assert_eq!(opt.inputs().len(), n.inputs().len());
        assert_eq!(opt.outputs().len(), n.outputs().len());

        let mut sim_a = Simulator::new(&n).expect("original simulates");
        let mut sim_b = Simulator::new(&opt).expect("optimized simulates");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        for cycle in 0..256 {
            let pat: Vec<u64> = (0..n.inputs().len()).map(|_| rng.gen()).collect();
            assert_eq!(
                sim_a.step(&pat).unwrap(),
                sim_b.step(&pat).unwrap(),
                "seed {seed}, cycle {cycle}"
            );
        }
    }
}

#[test]
fn optimizer_only_shrinks_and_accounts_for_it() {
    for seed in 0..8u64 {
        let profile = Profile::custom("opt", 200, 8, 8, 6);
        let n = profile.generate(&mut StdRng::seed_from_u64(seed));
        let (opt, report) = optimize(&n).expect("optimize succeeds");
        assert!(opt.gate_count() <= n.gate_count(), "seed {seed}");
        assert!(opt.dff_count() <= n.dff_count(), "seed {seed}");
        // Every vanished gate is attributed to one of the passes.
        let lost = n.gate_count() - opt.gate_count();
        assert!(
            report.total_removed() >= lost,
            "seed {seed}: {lost} gates lost but report only accounts for {}",
            report.total_removed()
        );
    }
}

#[test]
fn hybrid_netlists_keep_their_luts() {
    let profile = Profile::custom("opt", 120, 6, 8, 6);
    let mut n = profile.generate(&mut StdRng::seed_from_u64(3));
    // Turn a handful of gates into LUTs, then optimize.
    let gates: Vec<_> = n
        .node_ids()
        .filter(|&id| n.node(id).gate_kind().is_some() && n.node(id).fanin().len() <= 6)
        .take(6)
        .collect();
    for id in gates {
        n.replace_gate_with_lut(id).unwrap();
    }
    let before = n.lut_count();
    let (opt, _) = optimize(&n).expect("optimize succeeds");
    // LUTs may only disappear if truly dead (nothing observable reads
    // them); on this connected circuit all survive.
    assert_eq!(opt.lut_count(), before);
}
