//! Gate-level logic optimization — the "logic synthesis" box of the
//! paper's Figure 2 flow.
//!
//! [`optimize`] rewrites a netlist through four classic passes, executed
//! in one topological sweep plus a reachability sweep:
//!
//! * **constant folding** — gates with constant-determined outputs
//!   become constants, constant operands are absorbed
//!   (`AND(x, 1) → x`, `AND(x, 0) → 0`, `XOR(x, 1) → NOT x`, …);
//! * **buffer/alias collapsing** — buffers and single-operand
//!   reductions forward their operand, double negations cancel;
//! * **structural hashing** — structurally identical gates (same kind,
//!   same operand set) are shared;
//! * **dead-logic sweep** — nodes that cannot reach a primary output
//!   (even through flip-flops) are removed.
//!
//! Reconfigurable LUTs are **never** folded, hashed or swept into: they
//! are the security payload, and collapsing them would leak structure.
//! Their fan-ins are still substituted through aliases.
//!
//! The optimized netlist is functionally equivalent to the input (the
//! integration suite proves it with the SAT equivalence checker) and is
//! what the selection algorithms should run on — the paper's flow
//! inserts security *after* synthesis.
//!
//! # Example
//!
//! ```
//! use sttlock_netlist::{GateKind, NetlistBuilder};
//! use sttlock_opt::optimize;
//!
//! # fn main() -> Result<(), sttlock_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("m");
//! b.input("x");
//! b.constant("one", true);
//! b.gate("g", GateKind::And, &["x", "one"]); // = x
//! b.gate("h", GateKind::Not, &["g"]);
//! b.output("h");
//! let n = b.finish()?;
//! let (opt, report) = optimize(&n)?;
//! assert_eq!(opt.gate_count(), 1); // only the NOT survives
//! assert!(report.collapsed >= 1); // AND(x, 1) forwarded its operand
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use sttlock_netlist::{CircuitView, GateKind, Netlist, NetlistBuilder, NetlistError, Node};

/// Counters describing what [`optimize`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Gates folded away through constants or operand absorption.
    pub folded: usize,
    /// Gates shared by structural hashing.
    pub shared: usize,
    /// Buffers/aliases collapsed (including cancelled double negations).
    pub collapsed: usize,
    /// Nodes removed by the dead-logic sweep.
    pub swept: usize,
}

impl OptReport {
    /// Total removed nodes.
    pub fn total_removed(&self) -> usize {
        self.folded + self.shared + self.collapsed + self.swept
    }
}

/// What an original node maps to in the optimized netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Rep {
    Const(bool),
    Name(String),
}

#[derive(Debug, Clone)]
enum Def {
    Input,
    Const(bool),
    Gate(GateKind, Vec<String>),
    Dff(String),
    Lut(Vec<String>, Option<sttlock_netlist::TruthTable>),
}

/// Optimizes a netlist. Returns the rewritten netlist and a report.
///
/// Primary inputs and outputs are preserved by count and order; an
/// output whose cone folds to a constant is driven by an explicit
/// constant node. Flip-flops are never folded (their reset behaviour is
/// part of the design's function) but are swept when nothing observable
/// depends on them.
///
/// # Errors
///
/// Returns a [`NetlistError`] only if the rebuilt netlist fails
/// validation, which would indicate a bug in the rewrite rules — the
/// error is surfaced rather than panicking so callers can fall back to
/// the unoptimized netlist.
pub fn optimize(netlist: &Netlist) -> Result<(Netlist, OptReport), NetlistError> {
    let mut report = OptReport::default();
    let mut rep: Vec<Option<Rep>> = vec![None; netlist.len()];
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut def_index: HashMap<String, usize> = HashMap::new();
    // Structural hash: (kind, sorted operands) → surviving node name.
    let mut strash: HashMap<(GateKind, Vec<String>), String> = HashMap::new();
    // name → operand it negates (for double-negation cancelling).
    let mut not_of: HashMap<String, String> = HashMap::new();

    let emit = |name: &str,
                def: Def,
                defs: &mut Vec<(String, Def)>,
                def_index: &mut HashMap<String, usize>| {
        def_index.insert(name.to_owned(), defs.len());
        defs.push((name.to_owned(), def));
    };

    // Sources first: inputs, constants, flip-flops (D filled later).
    for (id, node) in netlist.iter() {
        let name = netlist.node_name(id);
        match node {
            Node::Input => {
                rep[id.index()] = Some(Rep::Name(name.to_owned()));
                emit(name, Def::Input, &mut defs, &mut def_index);
            }
            Node::Const(v) => {
                rep[id.index()] = Some(Rep::Const(*v));
            }
            Node::Dff { .. } => {
                rep[id.index()] = Some(Rep::Name(name.to_owned()));
                emit(name, Def::Dff(String::new()), &mut defs, &mut def_index);
            }
            _ => {}
        }
    }

    // Shared constant drivers, created on demand.
    let mut const_names: [Option<String>; 2] = [None, None];
    let mut const_name = |v: bool,
                          defs: &mut Vec<(String, Def)>,
                          def_index: &mut HashMap<String, usize>|
     -> String {
        let slot = usize::from(v);
        if let Some(n) = &const_names[slot] {
            return n.clone();
        }
        let name = format!("_const{}", u8::from(v));
        def_index.insert(name.clone(), defs.len());
        defs.push((name.clone(), Def::Const(v)));
        const_names[slot] = Some(name.clone());
        name
    };

    // Combinational nodes in dependency order.
    for &id in CircuitView::new(netlist).topo_order() {
        let name = netlist.node_name(id).to_owned();
        let node = netlist.node(id);
        let subs: Vec<Rep> = node
            .fanin()
            .iter()
            .map(|f| rep[f.index()].clone().expect("topo order resolves fan-ins"))
            .collect();

        if let Node::Lut { config, .. } = node {
            // LUTs survive untouched; substitute their operands only.
            let operands: Vec<String> = subs
                .iter()
                .map(|r| match r {
                    Rep::Const(v) => const_name(*v, &mut defs, &mut def_index),
                    Rep::Name(n) => n.clone(),
                })
                .collect();
            rep[id.index()] = Some(Rep::Name(name.clone()));
            emit(
                &name,
                Def::Lut(operands, *config),
                &mut defs,
                &mut def_index,
            );
            continue;
        }

        let kind = node.gate_kind().expect("combinational non-LUT is a gate");
        let outcome = simplify(kind, &subs);
        let resolved = match outcome {
            Simplified::Const(v) => {
                report.folded += 1;
                Rep::Const(v)
            }
            Simplified::Alias(op) => {
                report.collapsed += 1;
                Rep::Name(op)
            }
            Simplified::Not(op) => {
                // Cancel NOT(NOT(x)).
                if let Some(inner) = not_of.get(&op) {
                    report.collapsed += 1;
                    Rep::Name(inner.clone())
                } else if let Some(existing) = strash.get(&(GateKind::Not, vec![op.clone()])) {
                    report.shared += 1;
                    Rep::Name(existing.clone())
                } else {
                    strash.insert((GateKind::Not, vec![op.clone()]), name.clone());
                    not_of.insert(name.clone(), op.clone());
                    emit(
                        &name,
                        Def::Gate(GateKind::Not, vec![op]),
                        &mut defs,
                        &mut def_index,
                    );
                    Rep::Name(name.clone())
                }
            }
            Simplified::Gate(k, mut ops) => {
                ops.sort();
                if let Some(existing) = strash.get(&(k, ops.clone())) {
                    report.shared += 1;
                    Rep::Name(existing.clone())
                } else {
                    strash.insert((k, ops.clone()), name.clone());
                    emit(&name, Def::Gate(k, ops), &mut defs, &mut def_index);
                    Rep::Name(name.clone())
                }
            }
        };
        rep[id.index()] = Some(resolved);
    }

    // Fill flip-flop D pins.
    for (id, node) in netlist.iter() {
        if let Node::Dff { d } = node {
            let name = netlist.node_name(id);
            let d_name = match rep[d.index()].clone().expect("resolved") {
                Rep::Const(v) => const_name(v, &mut defs, &mut def_index),
                Rep::Name(n) => n,
            };
            let slot = def_index[name];
            defs[slot].1 = Def::Dff(d_name);
        }
    }

    // Output representatives (constant cones get explicit drivers).
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|&o| match rep[o.index()].clone().expect("resolved") {
            Rep::Const(v) => const_name(v, &mut defs, &mut def_index),
            Rep::Name(n) => n,
        })
        .collect();

    // Dead-logic sweep: keep what the outputs reach (crossing DFFs).
    let mut keep: HashSet<String> = HashSet::new();
    let mut stack: Vec<String> = outputs.clone();
    while let Some(n) = stack.pop() {
        if !keep.insert(n.clone()) {
            continue;
        }
        let Some(&slot) = def_index.get(&n) else {
            continue;
        };
        match &defs[slot].1 {
            Def::Gate(_, ops) | Def::Lut(ops, _) => stack.extend(ops.iter().cloned()),
            Def::Dff(d) => stack.push(d.clone()),
            Def::Input | Def::Const(_) => {}
        }
    }

    let mut b = NetlistBuilder::new(netlist.name());
    for (name, def) in &defs {
        let dead = !keep.contains(name) && !matches!(def, Def::Input);
        if dead {
            report.swept += 1;
            continue;
        }
        match def {
            Def::Input => {
                b.input(name);
            }
            Def::Const(v) => {
                b.constant(name, *v);
            }
            Def::Gate(kind, ops) => {
                let refs: Vec<&str> = ops.iter().map(String::as_str).collect();
                b.gate(name, *kind, &refs);
            }
            Def::Dff(d) => {
                b.dff(name, d);
            }
            Def::Lut(ops, config) => {
                let refs: Vec<&str> = ops.iter().map(String::as_str).collect();
                b.lut(name, &refs, *config);
            }
        }
    }
    for o in &outputs {
        b.output(o);
    }
    let optimized = b.finish()?;
    Ok((optimized, report))
}

enum Simplified {
    Const(bool),
    Alias(String),
    Not(String),
    Gate(GateKind, Vec<String>),
}

/// Applies the algebraic rules for one gate given resolved operands.
fn simplify(kind: GateKind, subs: &[Rep]) -> Simplified {
    use GateKind::*;
    match kind {
        Buf => match &subs[0] {
            Rep::Const(v) => Simplified::Const(*v),
            Rep::Name(n) => Simplified::Alias(n.clone()),
        },
        Not => match &subs[0] {
            Rep::Const(v) => Simplified::Const(!v),
            Rep::Name(n) => Simplified::Not(n.clone()),
        },
        And | Nand => {
            let invert = kind == Nand;
            let mut ops: Vec<String> = Vec::new();
            for s in subs {
                match s {
                    Rep::Const(false) => return Simplified::Const(invert),
                    Rep::Const(true) => {}
                    Rep::Name(n) => {
                        if !ops.contains(n) {
                            ops.push(n.clone());
                        }
                    }
                }
            }
            finish_monotone(invert, ops, true)
        }
        Or | Nor => {
            let invert = kind == Nor;
            let mut ops: Vec<String> = Vec::new();
            for s in subs {
                match s {
                    Rep::Const(true) => return Simplified::Const(!invert),
                    Rep::Const(false) => {}
                    Rep::Name(n) => {
                        if !ops.contains(n) {
                            ops.push(n.clone());
                        }
                    }
                }
            }
            finish_monotone(invert, ops, false)
        }
        Xor | Xnor => {
            let mut parity = kind == Xnor;
            let mut ops: Vec<String> = Vec::new();
            for s in subs {
                match s {
                    Rep::Const(v) => parity ^= v,
                    Rep::Name(n) => {
                        // x ⊕ x = 0: pairs cancel.
                        if let Some(pos) = ops.iter().position(|o| o == n) {
                            ops.remove(pos);
                        } else {
                            ops.push(n.clone());
                        }
                    }
                }
            }
            match (ops.len(), parity) {
                (0, p) => Simplified::Const(p),
                (1, false) => Simplified::Alias(ops.pop().expect("one operand")),
                (1, true) => Simplified::Not(ops.pop().expect("one operand")),
                (_, false) => Simplified::Gate(GateKind::Xor, ops),
                (_, true) => Simplified::Gate(GateKind::Xnor, ops),
            }
        }
    }
}

/// Shared tail for AND/NAND/OR/NOR after constant absorption.
/// `identity_empty` is the value of the un-inverted reduction over zero
/// operands (true for AND, false for OR).
fn finish_monotone(invert: bool, mut ops: Vec<String>, identity_empty: bool) -> Simplified {
    match ops.len() {
        0 => Simplified::Const(identity_empty ^ invert),
        1 => {
            let op = ops.pop().expect("one operand");
            if invert {
                Simplified::Not(op)
            } else {
                Simplified::Alias(op)
            }
        }
        _ => {
            let kind = match (identity_empty, invert) {
                (true, false) => GateKind::And,
                (true, true) => GateKind::Nand,
                (false, false) => GateKind::Or,
                (false, true) => GateKind::Nor,
            };
            Simplified::Gate(kind, ops)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_netlist::NetlistBuilder;

    fn build(f: impl FnOnce(&mut NetlistBuilder)) -> Netlist {
        let mut b = NetlistBuilder::new("t");
        f(&mut b);
        b.finish().unwrap()
    }

    #[test]
    fn constant_folding_collapses_cones() {
        let n = build(|b| {
            b.input("x");
            b.constant("zero", false);
            b.gate("g1", GateKind::And, &["x", "zero"]); // 0
            b.gate("g2", GateKind::Or, &["g1", "x"]); // x
            b.gate("g3", GateKind::Nand, &["g2", "g2"]); // NOT x
            b.output("g3");
        });
        let (opt, report) = optimize(&n).unwrap();
        assert_eq!(opt.gate_count(), 1, "only the NOT survives");
        assert!(report.folded >= 1);
        assert!(report.collapsed >= 1);
    }

    #[test]
    fn double_negation_cancels() {
        let n = build(|b| {
            b.input("x");
            b.input("y");
            b.gate("n1", GateKind::Not, &["x"]);
            b.gate("n2", GateKind::Not, &["n1"]);
            b.gate("o", GateKind::And, &["n2", "y"]); // = AND(x, y)
            b.output("o");
        });
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(opt.gate_count(), 1);
        let o = opt.outputs()[0];
        assert_eq!(opt.node(o).gate_kind(), Some(GateKind::And));
    }

    #[test]
    fn structural_hashing_shares_duplicates() {
        let n = build(|b| {
            b.input("x");
            b.input("y");
            b.gate("a1", GateKind::Nand, &["x", "y"]);
            b.gate("a2", GateKind::Nand, &["y", "x"]); // same function
            b.gate("o", GateKind::Xor, &["a1", "a2"]); // = 0
            b.output("o");
        });
        let (opt, report) = optimize(&n).unwrap();
        assert!(report.shared >= 1);
        // XOR(a, a) folds to constant 0 → output driven by a constant.
        let o = opt.outputs()[0];
        assert!(matches!(opt.node(o), Node::Const(false)));
    }

    #[test]
    fn dead_logic_is_swept() {
        let n = build(|b| {
            b.input("x");
            b.gate("used", GateKind::Not, &["x"]);
            b.gate("dead1", GateKind::Not, &["x"]);
            b.gate("dead2", GateKind::And, &["dead1", "x"]);
            b.dff("dead_ff", "dead2");
            b.output("used");
        });
        let (opt, report) = optimize(&n).unwrap();
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(opt.dff_count(), 0);
        // dead1 is structurally identical to used → shared, then dead2
        // and the flop are swept.
        assert!(report.swept >= 2, "{report:?}");
    }

    #[test]
    fn xor_pair_cancellation() {
        let n = build(|b| {
            b.input("x");
            b.input("y");
            b.gate("g", GateKind::Xor, &["x", "y", "x"]); // = y
            b.output("g");
        });
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(opt.node_name(opt.outputs()[0]), "y");
    }

    #[test]
    fn luts_are_never_touched() {
        let n = build(|b| {
            b.input("x");
            b.constant("one", true);
            b.lut(
                "l",
                &["x", "one"],
                Some(sttlock_netlist::TruthTable::from_gate(GateKind::And, 2)),
            );
            b.output("l");
        });
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(opt.lut_count(), 1, "security payload must survive");
        let l = opt.find("l").unwrap();
        assert_eq!(opt.node(l).fanin().len(), 2);
    }

    #[test]
    fn outputs_folding_to_constants_get_drivers() {
        let n = build(|b| {
            b.input("x");
            b.gate("g", GateKind::Xnor, &["x", "x"]); // constant 1
            b.output("g");
        });
        let (opt, _) = optimize(&n).unwrap();
        assert!(matches!(opt.node(opt.outputs()[0]), Node::Const(true)));
    }

    #[test]
    fn flip_flops_are_not_folded() {
        // q := NOT q toggles forever; folding it to a constant would be
        // wrong. The optimizer must keep the loop.
        let n = build(|b| {
            b.input("x");
            b.gate("next", GateKind::Not, &["q"]);
            b.dff("q", "next");
            b.gate("o", GateKind::And, &["q", "x"]);
            b.output("o");
        });
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(opt.dff_count(), 1);
        assert_eq!(opt.gate_count(), 2);
    }

    #[test]
    fn idempotent_on_already_optimal_netlists() {
        let n = build(|b| {
            b.input("x");
            b.input("y");
            b.gate("g", GateKind::Nand, &["x", "y"]);
            b.dff("q", "g");
            b.gate("o", GateKind::Xor, &["q", "x"]);
            b.output("o");
        });
        let (once, r1) = optimize(&n).unwrap();
        let (twice, r2) = optimize(&once).unwrap();
        assert_eq!(once.gate_count(), twice.gate_count());
        assert_eq!(r1.total_removed(), 0);
        assert_eq!(r2.total_removed(), 0);
    }
}
