//! End-to-end cluster tests: a real coordinator and real workers over
//! real sockets, asserting the headline guarantees — merged output
//! byte-identical to a single-node run, eviction + redispatch around
//! dead and version-skewed workers, and journal-driven resume.
//!
//! The obs collector registry is process-global, so every test takes
//! `SERIAL` first and every server runs with `install_obs: false`
//! under one ambient [`MetricsCollector`] per test.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_benchgen::Profile;
use sttlock_campaign::{execute, CampaignResult, CampaignSpec, CircuitSpec};
use sttlock_cluster::journal::DispatchJournal;
use sttlock_cluster::protocol::Register;
use sttlock_cluster::{
    start_coordinator, start_worker, Coordinator, CoordinatorConfig, Worker, WorkerConfig,
};
use sttlock_exec::{Backoff, Budget};
use sttlock_netlist::bench_format;
use sttlock_obs::MetricsCollector;
use sttlock_serve::client;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// Installs a fresh ambient collector; uninstalls on drop so a failing
/// test does not poison the next one.
struct Obs {
    collector: Arc<MetricsCollector>,
}

impl Obs {
    fn install() -> Obs {
        let collector = MetricsCollector::new();
        sttlock_obs::install(collector.clone());
        Obs { collector }
    }

    fn counter(&self, name: &str) -> u64 {
        self.collector.counter_value(name)
    }
}

impl Drop for Obs {
    fn drop(&mut self) {
        sttlock_obs::uninstall();
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sttlock-cluster-tests")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small(name: &str) -> CircuitSpec {
    CircuitSpec::Custom {
        name: name.to_owned(),
        gates: 60,
        dffs: 4,
        inputs: 6,
        outputs: 4,
    }
}

/// A 6-cell grid: 2 circuits x 3 algorithms x 1 seed.
fn grid_spec() -> CampaignSpec {
    CampaignSpec {
        circuits: vec![small("clu-a"), small("clu-b")],
        algorithms: sttlock_core::SelectionAlgorithm::ALL.to_vec(),
        seeds: vec![3],
        timeout: Duration::from_secs(60),
        jobs: 1,
        ..CampaignSpec::default()
    }
}

/// Blanks the two wall-clock fields; everything else must match bit
/// for bit between a single-node and a distributed run.
fn zeroed(mut result: CampaignResult) -> String {
    for r in &mut result.records {
        r.wall_ms = 0;
        if let Some(flow) = &mut r.flow {
            flow.selection_ms = 0.0;
        }
    }
    result.to_jsonl()
}

fn coordinator_cfg() -> CoordinatorConfig {
    CoordinatorConfig {
        install_obs: false,
        // Keep barren-round naps short so eviction/redispatch tests
        // finish quickly.
        backoff: Backoff::new(Duration::from_millis(10), Duration::from_millis(100)),
        ..CoordinatorConfig::default()
    }
}

fn join_worker(coordinator: &Coordinator) -> Worker {
    start_worker(WorkerConfig {
        coordinator: coordinator.addr().to_string(),
        install_obs: false,
        heartbeat: Duration::from_millis(100),
        ..WorkerConfig::default()
    })
    .expect("worker should start")
}

fn wait_for_workers(coordinator: &Coordinator, n: usize) {
    let deadline = Instant::now() + TIMEOUT;
    while coordinator.worker_count() != n {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} workers"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Registers a worker id with the coordinator without running one —
/// the address points wherever the test wants dispatches to land.
fn register_fake(coordinator: &Coordinator, id: &str, addr: &str) {
    let body = Register {
        worker: id.to_owned(),
        addr: addr.to_owned(),
    }
    .to_json()
    .to_string();
    let resp = client::request(
        &coordinator.addr().to_string(),
        "POST",
        "/cluster/register",
        Some(&body),
        TIMEOUT,
    )
    .expect("register should get a response");
    assert_eq!(resp.status, 200);
}

/// An address that refuses connections: bind, record, drop.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

#[test]
fn two_workers_merge_byte_identical_to_single_node() {
    let _guard = serial();
    let obs = Obs::install();
    let spec = grid_spec();
    let baseline = zeroed(execute(&spec));

    let coordinator = start_coordinator(CoordinatorConfig {
        min_workers: 2,
        ..coordinator_cfg()
    })
    .unwrap();
    let w1 = join_worker(&coordinator);
    let w2 = join_worker(&coordinator);
    wait_for_workers(&coordinator, 2);

    let result = coordinator.run_campaign(&spec, &Budget::with_timeout(TIMEOUT));
    assert_eq!(
        zeroed(result),
        baseline,
        "distributed merge must be byte-identical to a single-node run"
    );
    assert_eq!(obs.counter("cluster.dispatch"), 6);
    assert_eq!(obs.counter("cluster.redispatch"), 0);
    assert_eq!(obs.counter("cluster.merge"), 6);
    assert_eq!(obs.counter("cluster.lost_records"), 0);

    w1.shutdown();
    w2.shutdown();
    coordinator.shutdown();
}

#[test]
fn a_dead_worker_is_evicted_and_its_cells_redispatched() {
    let _guard = serial();
    let obs = Obs::install();
    let spec = grid_spec();
    let baseline = zeroed(execute(&spec));

    let coordinator = start_coordinator(coordinator_cfg()).unwrap();
    // The only registered worker refuses every connection, so round
    // one dispatches the whole grid into failures.
    register_fake(&coordinator, "fake-dead", &dead_addr());
    wait_for_workers(&coordinator, 1);

    let result = std::thread::scope(|s| {
        let run = s.spawn(|| coordinator.run_campaign(&spec, &Budget::with_timeout(TIMEOUT)));
        // A live worker joins only after the fake one has failed.
        std::thread::sleep(Duration::from_millis(300));
        let worker = join_worker(&coordinator);
        let result = run.join().expect("campaign thread should not panic");
        worker.shutdown();
        result
    });

    assert_eq!(
        zeroed(result),
        baseline,
        "redispatched cells must still merge byte-identically"
    );
    assert_eq!(obs.counter("cluster.evicted_workers"), 1);
    assert!(
        obs.counter("cluster.redispatch") >= 1,
        "cells dispatched to the dead worker must be re-dispatched"
    );
    assert_eq!(obs.counter("cluster.lost_records"), 0);
    coordinator.shutdown();
}

#[test]
fn a_version_skewed_worker_is_treated_like_a_dead_one() {
    let _guard = serial();
    let obs = Obs::install();
    let spec = grid_spec();
    let baseline = zeroed(execute(&spec));

    // A fake worker that answers 200 with a payload from a different
    // protocol version. The thread parks on accept; it dies with the
    // test process.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let skewed_addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            let body = "{\"proto\":999}";
            let _ = write!(
                stream,
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            );
        }
    });

    let coordinator = start_coordinator(coordinator_cfg()).unwrap();
    register_fake(&coordinator, "fake-skewed", &skewed_addr);
    wait_for_workers(&coordinator, 1);

    let result = std::thread::scope(|s| {
        let run = s.spawn(|| coordinator.run_campaign(&spec, &Budget::with_timeout(TIMEOUT)));
        std::thread::sleep(Duration::from_millis(300));
        let worker = join_worker(&coordinator);
        let result = run.join().expect("campaign thread should not panic");
        worker.shutdown();
        result
    });

    assert_eq!(
        zeroed(result),
        baseline,
        "a skewed worker must not contribute records"
    );
    assert!(obs.counter("cluster.skewed_responses") >= 1);
    assert_eq!(obs.counter("cluster.evicted_workers"), 1);
    assert!(obs.counter("cluster.redispatch") >= 1);
    coordinator.shutdown();
}

#[test]
fn the_run_survives_dropping_below_the_startup_quorum() {
    // min_workers gates only the first round: with the quorum formed
    // by one live worker plus one that refuses every connection, the
    // run must still complete on the survivor instead of deadlocking
    // behind an unreachable quorum.
    let _guard = serial();
    let _obs = Obs::install();
    let spec = grid_spec();
    let baseline = zeroed(execute(&spec));

    let coordinator = start_coordinator(CoordinatorConfig {
        min_workers: 2,
        ..coordinator_cfg()
    })
    .unwrap();
    register_fake(&coordinator, "fake-quorum", &dead_addr());
    let worker = join_worker(&coordinator);
    wait_for_workers(&coordinator, 2);

    let result = coordinator.run_campaign(&spec, &Budget::with_timeout(Duration::from_secs(30)));
    assert_eq!(
        zeroed(result),
        baseline,
        "the run must complete on the surviving worker"
    );
    worker.shutdown();
    coordinator.shutdown();
}

#[test]
fn stale_workers_are_evicted_on_heartbeat_timeout() {
    let _guard = serial();
    let obs = Obs::install();
    let coordinator = start_coordinator(CoordinatorConfig {
        heartbeat_timeout: Duration::from_millis(150),
        ..coordinator_cfg()
    })
    .unwrap();
    register_fake(&coordinator, "fake-silent", &dead_addr());
    assert_eq!(coordinator.worker_count(), 1);

    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        coordinator.worker_count(),
        0,
        "a worker that stops heartbeating must be evicted"
    );
    assert_eq!(obs.counter("cluster.evicted_workers"), 1);
    coordinator.shutdown();
}

#[test]
fn resume_replays_journal_completions_and_dispatches_only_the_rest() {
    let _guard = serial();
    let obs = Obs::install();
    let spec = grid_spec();
    let baseline = execute(&spec);
    let keys: Vec<String> = spec
        .cells()
        .iter()
        .map(sttlock_campaign::cell_journal_key)
        .collect();
    assert_eq!(baseline.records.len(), 6);

    // Simulate a coordinator that crashed after completing the first
    // three cells: its journal holds their durable completions.
    let journal_path = tmp_dir("resume").join("dispatch.log");
    {
        let mut opened = DispatchJournal::open(&journal_path).unwrap();
        for (key, record) in keys.iter().zip(&baseline.records).take(3) {
            opened.journal.complete(key, record).unwrap();
        }
    }

    let coordinator = start_coordinator(CoordinatorConfig {
        journal: Some(journal_path),
        resume: true,
        ..coordinator_cfg()
    })
    .unwrap();
    let worker = join_worker(&coordinator);
    wait_for_workers(&coordinator, 1);

    let result = coordinator.run_campaign(&spec, &Budget::with_timeout(TIMEOUT));
    assert_eq!(
        obs.counter("cluster.replayed"),
        3,
        "journaled completions replay instead of re-running"
    );
    assert_eq!(
        obs.counter("cluster.dispatch"),
        3,
        "only the incomplete cells may be dispatched"
    );
    assert_eq!(
        zeroed(result),
        zeroed(baseline),
        "replayed + fresh records must merge byte-identically"
    );

    worker.shutdown();
    coordinator.shutdown();
}

#[test]
fn harden_fan_out_routes_to_a_worker_and_degrades_without_one() {
    let _guard = serial();
    let obs = Obs::install();
    let coordinator = start_coordinator(coordinator_cfg()).unwrap();
    let coord_addr = coordinator.addr().to_string();

    let mut rng = StdRng::seed_from_u64(7);
    let bench = bench_format::write(&Profile::custom("t", 40, 3, 5, 3).generate(&mut rng));
    let escaped = bench
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    let body = format!("{{\"bench\":\"{escaped}\",\"algorithm\":\"para\",\"seed\":9}}");

    // No workers yet: explicit 503 with a retry hint, not a hang.
    let starved = client::request(&coord_addr, "POST", "/v1/harden", Some(&body), TIMEOUT).unwrap();
    assert_eq!(starved.status, 503);
    assert_eq!(starved.header("retry-after"), Some("1"));

    let worker = join_worker(&coordinator);
    wait_for_workers(&coordinator, 1);

    let via_coordinator =
        client::request(&coord_addr, "POST", "/v1/harden", Some(&body), TIMEOUT).unwrap();
    assert_eq!(via_coordinator.status, 200);
    let direct =
        client::request(worker.addr(), "POST", "/v1/harden", Some(&body), TIMEOUT).unwrap();
    // Blank the wall-clock fields; the hardening itself is
    // deterministic, so everything else must match bit for bit.
    let blanked = |text: &str| {
        let mut v = sttlock_campaign::json::Json::parse(text).unwrap();
        if let sttlock_campaign::json::Json::Obj(map) = &mut v {
            map.insert("wall_ms".into(), sttlock_campaign::json::Json::from(0u64));
            if let Some(sttlock_campaign::json::Json::Obj(metrics)) = map.get_mut("metrics") {
                metrics.insert(
                    "selection_ms".into(),
                    sttlock_campaign::json::Json::from(0u64),
                );
            }
        }
        v.to_string()
    };
    assert_eq!(
        blanked(&via_coordinator.body_text()),
        blanked(&direct.body_text()),
        "the coordinator must forward harden responses verbatim"
    );
    assert_eq!(obs.counter("cluster.fanout"), 1);

    worker.shutdown();
    coordinator.shutdown();
}
