//! The coordinator's dispatch journal.
//!
//! Every dispatch and completion is appended (fsync-always) to a
//! [`sttlock_store::RecordLog`], so a coordinator that crashes mid-run
//! can `--resume`: completions replay, and only the cells with no
//! durable completion are re-dispatched. Completed records are stamped
//! with the campaign journal schema ([`JOURNAL_SCHEMA_VERSION`]) — a
//! journal written by an incompatible build refuses to replay, exactly
//! like the single-node resume path.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use sttlock_campaign::json::Json;
use sttlock_campaign::{RunRecord, JOURNAL_SCHEMA_VERSION};
use sttlock_store::{FsyncPolicy, OpenedLog, Record, RecordLog, RecoveryReport};

/// One dispatch-journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchEntry {
    /// A cell left for a worker; until a matching `Completed` lands the
    /// cell is in flight (and incomplete for resume purposes).
    Dispatched {
        /// The cell's journal key ([`sttlock_campaign::cell_journal_key`]).
        key: String,
        /// The worker it went to.
        worker: String,
    },
    /// A worker returned a record for the cell.
    Completed {
        /// The cell's journal key.
        key: String,
        /// Campaign journal schema the record was written under.
        schema: u32,
        /// The record, verbatim (boxed: a full record dwarfs the
        /// two-string `Dispatched` variant).
        record: Box<RunRecord>,
    },
}

impl Record for DispatchEntry {
    fn encode(&self) -> Vec<u8> {
        match self {
            DispatchEntry::Dispatched { key, worker } => Json::obj([
                ("type", Json::from("dispatched")),
                ("key", Json::from(key.as_str())),
                ("worker", Json::from(worker.as_str())),
            ]),
            DispatchEntry::Completed {
                key,
                schema,
                record,
            } => Json::obj([
                ("type", Json::from("completed")),
                ("key", Json::from(key.as_str())),
                ("schema", Json::from(u64::from(*schema))),
                ("record", record.to_json()),
            ]),
        }
        .to_string()
        .into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let v = Json::parse(std::str::from_utf8(bytes).ok()?).ok()?;
        let key = v.get("key")?.as_str()?.to_owned();
        match v.get("type")?.as_str()? {
            "dispatched" => Some(DispatchEntry::Dispatched {
                key,
                worker: v.get("worker")?.as_str()?.to_owned(),
            }),
            "completed" => Some(DispatchEntry::Completed {
                key,
                schema: v.get("schema")?.as_u64()? as u32,
                record: Box::new(RunRecord::from_json(v.get("record")?)?),
            }),
            _ => None,
        }
    }
}

/// The open dispatch journal, positioned for appends.
pub struct DispatchJournal {
    log: RecordLog<DispatchEntry>,
}

/// The result of opening a dispatch journal.
pub struct OpenedDispatchJournal {
    /// The journal, ready to append.
    pub journal: DispatchJournal,
    /// Recovered entries, in append order.
    pub entries: Vec<DispatchEntry>,
    /// What the store's tail-heal recovery found.
    pub recovery: RecoveryReport,
}

impl DispatchJournal {
    /// Opens (creating if absent) the journal at `path`, healing any
    /// torn tail. Appends fsync per record — the journal exists to
    /// survive `kill -9`.
    pub fn open(path: &Path) -> io::Result<OpenedDispatchJournal> {
        let OpenedLog {
            log,
            records,
            recovery,
        } = RecordLog::open(path, FsyncPolicy::Always)?;
        Ok(OpenedDispatchJournal {
            journal: DispatchJournal { log },
            entries: records,
            recovery,
        })
    }

    /// Appends one entry and fsyncs.
    pub fn append(&mut self, entry: &DispatchEntry) -> io::Result<()> {
        self.log.append(entry)
    }

    /// Journals a completion under the current campaign schema.
    pub fn complete(&mut self, key: &str, record: &RunRecord) -> io::Result<()> {
        self.append(&DispatchEntry::Completed {
            key: key.to_owned(),
            schema: JOURNAL_SCHEMA_VERSION,
            record: Box::new(record.clone()),
        })
    }
}

/// Collapses journal entries to the last replayable completion per
/// cell: current schema, `ok` status, flow metrics present — the same
/// gate the single-node `--resume` applies. Anything else (failures,
/// version-skewed completions, bare dispatches) leaves the cell
/// incomplete, so the coordinator re-dispatches exactly those.
pub fn completed_map(entries: &[DispatchEntry]) -> HashMap<String, RunRecord> {
    let mut out = HashMap::new();
    for entry in entries {
        if let DispatchEntry::Completed {
            key,
            schema,
            record,
        } = entry
        {
            if *schema == JOURNAL_SCHEMA_VERSION && record.status.is_ok() && record.flow.is_some() {
                out.insert(key.clone(), record.as_ref().clone());
            } else {
                out.remove(key);
                sttlock_obs::counter("cluster.skewed_replays", 1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_campaign::RunStatus;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("sttlock-cluster-journal-tests")
            .join(format!("{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("dispatch.log")
    }

    fn ok_record(circuit: &str) -> RunRecord {
        let mut r = RunRecord::failure(circuit, "independent", 1, "none", RunStatus::Ok);
        r.flow = Some(sttlock_campaign::FlowMetrics {
            perf_pct: 0.0,
            power_pct: 0.0,
            leakage_pct: 0.0,
            area_pct: 0.0,
            stt_count: 1,
            selection_ms: 0.0,
            n_indep_log10: 1.0,
            n_dep_log10: 1.0,
            n_bf_log10: 1.0,
        });
        r
    }

    #[test]
    fn entries_round_trip_through_reopen() {
        let path = scratch("roundtrip");
        {
            let mut opened = DispatchJournal::open(&path).unwrap();
            opened
                .journal
                .append(&DispatchEntry::Dispatched {
                    key: "k1".into(),
                    worker: "w1".into(),
                })
                .unwrap();
            opened.journal.complete("k1", &ok_record("a")).unwrap();
        }
        let opened = DispatchJournal::open(&path).unwrap();
        assert_eq!(opened.entries.len(), 2);
        assert!(opened.recovery.is_clean());
        assert!(matches!(
            &opened.entries[0],
            DispatchEntry::Dispatched { key, worker } if key == "k1" && worker == "w1"
        ));
        assert!(matches!(
            &opened.entries[1],
            DispatchEntry::Completed { key, schema, .. }
                if key == "k1" && *schema == JOURNAL_SCHEMA_VERSION
        ));
    }

    #[test]
    fn completed_map_replays_only_clean_current_schema_ok_records() {
        let dispatched = DispatchEntry::Dispatched {
            key: "pending".into(),
            worker: "w".into(),
        };
        let clean = DispatchEntry::Completed {
            key: "clean".into(),
            schema: JOURNAL_SCHEMA_VERSION,
            record: Box::new(ok_record("clean")),
        };
        let failed = DispatchEntry::Completed {
            key: "failed".into(),
            schema: JOURNAL_SCHEMA_VERSION,
            record: Box::new(RunRecord::failure(
                "f",
                "independent",
                1,
                "none",
                RunStatus::TimedOut,
            )),
        };
        let skewed = DispatchEntry::Completed {
            key: "skewed".into(),
            schema: JOURNAL_SCHEMA_VERSION + 1,
            record: Box::new(ok_record("skewed")),
        };
        let map = completed_map(&[dispatched, clean, failed, skewed]);
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("clean"));
    }

    #[test]
    fn a_later_bad_completion_reopens_the_cell() {
        // A cell completed cleanly, then a newer entry for the same key
        // is skewed (e.g. a re-run under a different build): last wins,
        // the cell must re-dispatch rather than replay stale data.
        let good = DispatchEntry::Completed {
            key: "k".into(),
            schema: JOURNAL_SCHEMA_VERSION,
            record: Box::new(ok_record("k")),
        };
        let bad = DispatchEntry::Completed {
            key: "k".into(),
            schema: JOURNAL_SCHEMA_VERSION + 1,
            record: Box::new(ok_record("k")),
        };
        assert!(completed_map(&[good, bad]).is_empty());
    }
}
