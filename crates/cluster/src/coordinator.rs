//! The cluster coordinator: worker registry, campaign sharding with
//! redispatch-on-failure, dispatch journaling, and `/v1/harden`
//! fan-out.
//!
//! # Sharding and merge
//!
//! Cells are assigned to workers by content hash of their journal key
//! (the same [`sttlock_exec::KeyBuilder`] scheme the caches use), so
//! the assignment is deterministic given the live worker set. Results
//! are merged positionally against [`CampaignSpec::cells`] order — the
//! merged JSONL is byte-identical to a single-node run no matter which
//! worker finished first, because ordering comes from the grid, never
//! from arrival.
//!
//! # Failure handling
//!
//! A dispatch that fails — connection refused/dropped, a non-200, a
//! response that does not decode under the current protocol version —
//! evicts the worker from the registry and leaves the cell pending;
//! the next round re-shards pending cells over the survivors, with a
//! capped exponential backoff between barren rounds. A worker that was
//! only transiently slow re-registers on its next heartbeat (the
//! coordinator answers `known: false`) and rejoins the pool.
//!
//! # Crash recovery
//!
//! With a journal configured, every dispatch and completion is a
//! durable [`crate::journal::DispatchEntry`]. Reopening with `resume`
//! replays clean completions and re-dispatches only the cells without
//! one — the distributed analogue of the campaign runner's `--resume`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sttlock_campaign::json::Json;
use sttlock_campaign::{
    cell_journal_key, CampaignResult, CampaignSpec, Cell, RunRecord, RunStatus,
};
use sttlock_exec::{Backoff, Budget, KeyBuilder};
use sttlock_serve::http::Response;
use sttlock_serve::{client, ServeConfig, Server, StopHandle};

use crate::journal::{completed_map, DispatchEntry, DispatchJournal};
use crate::protocol::{
    CellRequest, CellResponse, Heartbeat, HeartbeatReply, Register, PROTOCOL_VERSION,
};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Campaign dispatch waits until this many workers are registered
    /// before the first round; after that the run keeps progressing on
    /// any non-empty live set (losing workers degrades throughput, it
    /// never re-blocks on the quorum).
    pub min_workers: usize,
    /// A worker whose last heartbeat is older than this is evicted.
    pub heartbeat_timeout: Duration,
    /// Slack added to the campaign's per-cell timeout for each
    /// dispatch round trip (serialization, transfer, queueing).
    pub dispatch_margin: Duration,
    /// Dispatch journal path (`None` disables journaling).
    pub journal: Option<PathBuf>,
    /// Replay clean completions from the journal instead of
    /// re-dispatching them.
    pub resume: bool,
    /// Backoff schedule between barren dispatch rounds.
    pub backoff: Backoff,
    /// Install this server's metrics sink as the process-global obs
    /// collector (off for in-process cluster tests).
    pub install_obs: bool,
    /// Record a full span trace, written on shutdown.
    pub trace_path: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            listen: "127.0.0.1:0".to_owned(),
            min_workers: 1,
            heartbeat_timeout: Duration::from_secs(5),
            dispatch_margin: Duration::from_secs(30),
            journal: None,
            resume: false,
            backoff: Backoff::default(),
            install_obs: true,
            trace_path: None,
        }
    }
}

/// One registered worker, as the coordinator sees it.
#[derive(Debug, Clone)]
struct WorkerInfo {
    addr: String,
    last_seen: Instant,
    load: u64,
    queue_depth: u64,
}

/// The live worker registry. BTreeMap: snapshots iterate in worker-id
/// order, making shard assignment deterministic for a given live set.
#[derive(Default)]
struct Registry {
    workers: BTreeMap<String, WorkerInfo>,
}

fn lock(registry: &Mutex<Registry>) -> MutexGuard<'_, Registry> {
    registry.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running coordinator.
pub struct Coordinator {
    server: Server,
    registry: Arc<Mutex<Registry>>,
    cfg: CoordinatorConfig,
}

/// Starts the coordinator's HTTP server (registration, heartbeats,
/// harden fan-out). Campaign dispatch is driven by the caller through
/// [`Coordinator::run_campaign`].
pub fn start_coordinator(cfg: CoordinatorConfig) -> io::Result<Coordinator> {
    let registry: Arc<Mutex<Registry>> = Arc::new(Mutex::new(Registry::default()));
    let router: sttlock_serve::Router = {
        let registry = Arc::clone(&registry);
        Arc::new(move |req, budget| route(&registry, req, budget))
    };
    let server = Server::start_with_router(
        ServeConfig {
            addr: cfg.listen.clone(),
            install_obs: cfg.install_obs,
            trace_path: cfg.trace_path.clone(),
            ..ServeConfig::default()
        },
        Some(router),
    )?;
    Ok(Coordinator {
        server,
        registry,
        cfg,
    })
}

impl Coordinator {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// A handle other threads can use to request shutdown.
    pub fn stop_handle(&self) -> StopHandle {
        self.server.stop_handle()
    }

    /// Currently registered (not yet evicted) worker count.
    pub fn worker_count(&self) -> usize {
        self.evict_stale();
        lock(&self.registry).workers.len()
    }

    /// Shuts the server down; returns the metrics digest.
    pub fn shutdown(self) -> String {
        self.server.shutdown()
    }

    /// Runs a campaign grid across the registered workers.
    ///
    /// Blocks the calling thread until every cell has a record or
    /// `budget` trips; a tripped budget synthesizes structured failure
    /// rows for the cells still pending, preserving the one-record-
    /// per-cell grid invariant.
    pub fn run_campaign(&self, spec: &CampaignSpec, budget: &Budget) -> CampaignResult {
        let start = Instant::now();
        let cells = spec.cells();
        let keys: Vec<String> = cells.iter().map(cell_journal_key).collect();
        let key_set: HashSet<&str> = keys.iter().map(String::as_str).collect();

        let mut journal_recovery = None;
        let mut done: HashMap<String, RunRecord> = HashMap::new();
        let journal: Option<Mutex<DispatchJournal>> = match &self.cfg.journal {
            Some(path) => match DispatchJournal::open(path) {
                Ok(opened) => {
                    journal_recovery = Some(opened.recovery.clone());
                    if self.cfg.resume {
                        done = completed_map(&opened.entries);
                        // Completions for cells outside this grid (a
                        // different spec against the same journal) must
                        // not leak into the merge.
                        done.retain(|k, _| key_set.contains(k.as_str()));
                        sttlock_obs::counter("cluster.replayed", done.len() as u64);
                    }
                    Some(Mutex::new(opened.journal))
                }
                Err(_) => {
                    sttlock_obs::counter("cluster.journal_open_failed", 1);
                    None
                }
            },
            None => None,
        };

        let timeout_ms = spec.timeout.as_millis() as u64;
        let dispatch_timeout = spec.timeout + self.cfg.dispatch_margin;
        let mut dispatched_once: HashSet<usize> = HashSet::new();
        let mut round = 0u32;

        // The quorum gates only the *first* dispatch: once the run is
        // underway, any single live worker keeps it progressing — a
        // worker crash that drops the cluster below `min_workers` must
        // degrade throughput, never deadlock the campaign.
        let mut wait_round = 0u32;
        while !budget.exhausted() {
            self.evict_stale();
            if lock(&self.registry).workers.len() >= self.cfg.min_workers.max(1) {
                break;
            }
            if !budget.sleep(self.cfg.backoff.delay(wait_round)) {
                break;
            }
            wait_round = wait_round.saturating_add(1);
        }

        loop {
            let pending: Vec<usize> = (0..cells.len())
                .filter(|&i| !done.contains_key(&keys[i]))
                .collect();
            if pending.is_empty() || budget.exhausted() {
                break;
            }
            self.evict_stale();
            let alive: Vec<(String, String)> = lock(&self.registry)
                .workers
                .iter()
                .map(|(id, w)| (id.clone(), w.addr.clone()))
                .collect();
            if alive.is_empty() {
                if !budget.sleep(self.cfg.backoff.delay(round)) {
                    break;
                }
                round = round.saturating_add(1);
                continue;
            }

            // Deterministic content-hash sharding over the live set.
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); alive.len()];
            for &i in &pending {
                shards[(shard_hash(&keys[i]) % alive.len() as u64) as usize].push(i);
            }

            let results: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::new());
            let failed: Mutex<Vec<String>> = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for ((worker_id, addr), shard) in alive.iter().zip(&shards) {
                    if shard.is_empty() {
                        continue;
                    }
                    let results = &results;
                    let failed = &failed;
                    let cells = &cells;
                    let keys = &keys;
                    let journal = &journal;
                    let dispatched_once = &dispatched_once;
                    s.spawn(move || {
                        for &i in shard {
                            if budget.exhausted() {
                                return;
                            }
                            if let Some(j) = journal {
                                let _ = lock_journal(j).append(&DispatchEntry::Dispatched {
                                    key: keys[i].clone(),
                                    worker: worker_id.clone(),
                                });
                            }
                            sttlock_obs::counter("cluster.dispatch", 1);
                            if dispatched_once.contains(&i) {
                                sttlock_obs::counter("cluster.redispatch", 1);
                            }
                            match dispatch_cell(
                                addr,
                                &cells[i],
                                timeout_ms,
                                dispatch_timeout,
                                budget,
                            ) {
                                Some(record) => {
                                    if let Some(j) = journal {
                                        let _ = lock_journal(j).complete(&keys[i], &record);
                                    }
                                    results
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .push((i, record));
                                }
                                None => {
                                    // The worker died, timed out or
                                    // answered skewed: evict it and
                                    // leave this shard's remaining
                                    // cells pending for the next round.
                                    failed
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .push(worker_id.clone());
                                    return;
                                }
                            }
                        }
                    });
                }
            });

            for &i in pending.iter() {
                dispatched_once.insert(i);
            }
            let fresh = results.into_inner().unwrap_or_else(PoisonError::into_inner);
            let progressed = !fresh.is_empty();
            for (i, record) in fresh {
                done.insert(keys[i].clone(), record);
            }
            for worker_id in failed.into_inner().unwrap_or_else(PoisonError::into_inner) {
                if lock(&self.registry).workers.remove(&worker_id).is_some() {
                    sttlock_obs::counter("cluster.evicted_workers", 1);
                }
            }

            if progressed {
                round = 0;
            } else {
                if !budget.sleep(self.cfg.backoff.delay(round)) {
                    break;
                }
                round = round.saturating_add(1);
            }
        }

        // Positional merge in grid order: cells the budget cut off get
        // structured failure rows, the grid invariant holds.
        let records: Vec<RunRecord> = cells
            .iter()
            .zip(&keys)
            .map(|(cell, key)| {
                done.get(key).cloned().unwrap_or_else(|| {
                    sttlock_obs::counter("cluster.lost_records", 1);
                    synthesize_failure(cell)
                })
            })
            .collect();
        sttlock_obs::counter("cluster.merge", records.len() as u64);
        CampaignResult {
            records,
            wall: start.elapsed(),
            journal_recovery,
        }
    }

    /// Drops workers whose last heartbeat is older than the timeout.
    fn evict_stale(&self) {
        let timeout = self.cfg.heartbeat_timeout;
        let now = Instant::now();
        lock(&self.registry).workers.retain(|_, w| {
            let alive = now.duration_since(w.last_seen) <= timeout;
            if !alive {
                sttlock_obs::counter("cluster.evicted_workers", 1);
            }
            alive
        });
    }
}

fn lock_journal<'a>(j: &'a Mutex<DispatchJournal>) -> MutexGuard<'a, DispatchJournal> {
    j.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shard assignment hash: the cache-key scheme over the cell's
/// journal key, folded to the first 64 bits.
fn shard_hash(key: &str) -> u64 {
    let hex = KeyBuilder::new(PROTOCOL_VERSION)
        .field("cell", &key)
        .finish()
        .hex();
    u64::from_str_radix(&hex[..16], 16).unwrap_or(0)
}

/// Ships one cell to a worker and decodes the record. `None` covers
/// every redispatch trigger: transport failure, non-200, undecodable
/// or version-skewed response, and a tripped per-dispatch budget.
fn dispatch_cell(
    addr: &str,
    cell: &Cell,
    timeout_ms: u64,
    dispatch_timeout: Duration,
    budget: &Budget,
) -> Option<RunRecord> {
    // The dispatch runs under its own deadline-capped child budget so
    // one wedged worker cannot outlive the run budget, and the charged
    // step bills the dispatch into the whole ancestor chain.
    let dispatch_budget = budget.child_with(Some(Instant::now() + dispatch_timeout), None);
    dispatch_budget.charge(1);
    if dispatch_budget.check().is_err() {
        return None;
    }
    let body = CellRequest {
        cell: cell.clone(),
        timeout_ms,
    }
    .to_json()
    .to_string();
    let resp = client::request(addr, "POST", "/v1/cell", Some(&body), dispatch_timeout).ok()?;
    if resp.status != 200 {
        return None;
    }
    let decoded = Json::parse(&resp.body_text())
        .ok()
        .and_then(|v| CellResponse::from_json(&v));
    if decoded.is_none() {
        sttlock_obs::counter("cluster.skewed_responses", 1);
    }
    decoded.map(|d| d.record)
}

/// The failure row for a cell the cluster could not complete, shaped
/// like the campaign runner's lost-slot rows.
fn synthesize_failure(cell: &Cell) -> RunRecord {
    let mut r = RunRecord::failure(
        cell.circuit.name(),
        &cell.algorithm.to_string(),
        cell.seed,
        cell.attack.tag(),
        RunStatus::Failed("cluster run ended before this cell completed".to_owned()),
    );
    r.config = cell.overrides.descriptor();
    if !cell.fault.is_noop() {
        r.fault = cell.fault.descriptor();
    }
    r
}

/// The coordinator's overlay routes: registration, heartbeats, and
/// harden fan-out. Everything else falls through to the built-in serve
/// routes (health, metrics, admin shutdown).
fn route(
    registry: &Mutex<Registry>,
    req: &sttlock_serve::http::Request,
    budget: &Budget,
) -> Option<Response> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/cluster/register") => Some(register(registry, &req.body)),
        ("POST", "/cluster/heartbeat") => Some(heartbeat(registry, &req.body)),
        ("POST", "/v1/harden") => Some(fan_out(registry, &req.body, budget)),
        _ => None,
    }
}

fn register(registry: &Mutex<Registry>, body: &[u8]) -> Response {
    let text = String::from_utf8_lossy(body);
    let Some(msg) = Json::parse(&text)
        .ok()
        .and_then(|v| Register::from_json(&v))
    else {
        return Response::error(400, "malformed or version-skewed register payload");
    };
    sttlock_obs::counter("cluster.registrations", 1);
    lock(registry).workers.insert(
        msg.worker,
        WorkerInfo {
            addr: msg.addr,
            last_seen: Instant::now(),
            load: 0,
            queue_depth: 0,
        },
    );
    Response::json(200, "{\"ok\":true}".to_owned())
}

fn heartbeat(registry: &Mutex<Registry>, body: &[u8]) -> Response {
    let text = String::from_utf8_lossy(body);
    let Some(msg) = Json::parse(&text)
        .ok()
        .and_then(|v| Heartbeat::from_json(&v))
    else {
        return Response::error(400, "malformed or version-skewed heartbeat payload");
    };
    let known = {
        let mut reg = lock(registry);
        match reg.workers.get_mut(&msg.worker) {
            Some(info) => {
                info.last_seen = Instant::now();
                info.load = msg.load;
                info.queue_depth = msg.queue_depth;
                true
            }
            None => false,
        }
    };
    Response::json(200, HeartbeatReply { known }.to_json().to_string())
}

/// Routes one `/v1/harden` request to the least-loaded worker. The
/// worker's persistent response cache still applies — the coordinator
/// only forwards bytes.
fn fan_out(registry: &Mutex<Registry>, body: &[u8], budget: &Budget) -> Response {
    let target = {
        let reg = lock(registry);
        reg.workers
            .iter()
            .min_by_key(|(id, w)| (w.load, w.queue_depth, (*id).clone()))
            .map(|(_, w)| w.addr.clone())
    };
    let Some(addr) = target else {
        return Response::error(503, "no workers registered for harden fan-out")
            .with_retry_after(1);
    };
    sttlock_obs::counter("cluster.fanout", 1);
    let timeout = budget.remaining().unwrap_or(Duration::from_secs(10));
    let text = String::from_utf8_lossy(body).into_owned();
    match client::request(&addr, "POST", "/v1/harden", Some(&text), timeout) {
        Ok(resp) => Response::json(resp.status, resp.body_text()),
        Err(_) => Response::error(503, "the selected worker did not answer"),
    }
}
