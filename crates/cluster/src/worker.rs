//! The cluster worker: a serve-based HTTP server that executes
//! dispatched campaign cells, plus a background loop that registers
//! with the coordinator and heartbeats load.
//!
//! The worker is deliberately coordinator-agnostic about lifetime: it
//! retries registration with capped exponential backoff while the
//! coordinator is down, and re-registers the moment a heartbeat reply
//! says `known: false` (a restarted/resumed coordinator forgets its
//! workers; the worker is the durable side of that handshake). Cell
//! execution rides on [`sttlock_campaign::CellExecutor`], so a cell
//! that panics or hangs becomes a structured failure record — the
//! worker process survives everything a local campaign run would.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sttlock_campaign::json::Json;
use sttlock_campaign::CellExecutor;
use sttlock_exec::{Backoff, Budget, CancelToken};
use sttlock_serve::http::Response;
use sttlock_serve::{client, ServeConfig, Server, StopHandle};

use crate::protocol::{CellRequest, CellResponse, Heartbeat, HeartbeatReply, Register};

/// How long a worker waits for a coordinator reply to a register or
/// heartbeat request.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(5);

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address to join (`host:port`).
    pub coordinator: String,
    /// Bind address for the worker's own server (`127.0.0.1:0` picks a
    /// free port).
    pub listen: String,
    /// Address advertised to the coordinator for dial-back; `None`
    /// advertises the resolved listen address.
    pub advertise: Option<String>,
    /// Stable worker id; `None` derives one from the resolved address.
    pub worker_id: Option<String>,
    /// Persistent cache directory for `/v1/harden` responses executed
    /// on this worker (`None` disables caching; campaign cells always
    /// execute fresh so distributed and single-node runs stay
    /// byte-identical).
    pub cache_dir: Option<PathBuf>,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Upper bound on one dispatched cell (the server's request
    /// timeout must outlast the campaign timeout the coordinator
    /// forwards per cell).
    pub request_timeout: Duration,
    /// Install this worker's metrics sink as the process-global obs
    /// collector (off for in-process cluster tests).
    pub install_obs: bool,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            coordinator: String::new(),
            listen: "127.0.0.1:0".to_owned(),
            advertise: None,
            worker_id: None,
            cache_dir: None,
            heartbeat: Duration::from_millis(500),
            request_timeout: Duration::from_secs(600),
            install_obs: true,
        }
    }
}

/// A running worker.
pub struct Worker {
    server: Server,
    addr: String,
    id: String,
    stop: CancelToken,
    control: Option<std::thread::JoinHandle<()>>,
}

/// Starts the worker server and its registration/heartbeat loop.
pub fn start_worker(cfg: WorkerConfig) -> io::Result<Worker> {
    let executor = Arc::new(CellExecutor::new(None));
    let active = Arc::new(AtomicU64::new(0));

    let router: sttlock_serve::Router = {
        let executor = Arc::clone(&executor);
        let active = Arc::clone(&active);
        Arc::new(move |req, _budget| route_cell(&executor, &active, req))
    };
    let server = Server::start_with_router(
        ServeConfig {
            addr: cfg.listen.clone(),
            cache_dir: cfg.cache_dir.clone(),
            request_timeout: cfg.request_timeout,
            install_obs: cfg.install_obs,
            ..ServeConfig::default()
        },
        Some(router),
    )?;
    let addr = cfg
        .advertise
        .clone()
        .unwrap_or_else(|| server.addr().to_string());
    let id = cfg
        .worker_id
        .clone()
        .unwrap_or_else(|| format!("worker-{}", server.addr()));

    // The control loop's sleeps ride on this budget: cancelling the
    // token (shutdown) interrupts a backoff nap instead of waiting it
    // out.
    let clock = Budget::unbounded();
    let stop = clock.token();
    let control = {
        let server_stop = server.stop_handle();
        let coordinator = cfg.coordinator.clone();
        let heartbeat = cfg.heartbeat;
        let id = id.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            control_loop(
                &coordinator,
                &id,
                &addr,
                heartbeat,
                &active,
                &clock,
                &server_stop,
            );
        })
    };

    Ok(Worker {
        server,
        addr,
        id,
        stop,
        control: Some(control),
    })
}

impl Worker {
    /// The address the worker advertises (and serves on).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The worker's identity as registered with the coordinator.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// A handle other threads can use to request shutdown.
    pub fn stop_handle(&self) -> StopHandle {
        self.server.stop_handle()
    }

    /// Blocks until shutdown is requested (`POST /admin/shutdown` or a
    /// stop handle), then drains. Returns the server's metrics digest.
    pub fn wait(mut self) -> String {
        let digest = self.server.wait();
        self.stop.cancel();
        if let Some(h) = self.control.take() {
            let _ = h.join();
        }
        digest
    }

    /// Shuts down the server and the control loop.
    pub fn shutdown(mut self) -> String {
        self.stop.cancel();
        let digest = self.server.shutdown();
        if let Some(h) = self.control.take() {
            let _ = h.join();
        }
        digest
    }
}

/// The worker's overlay routes. Only `POST /v1/cell` is intercepted;
/// everything else (health, metrics, harden with the worker-side
/// cache, admin shutdown) falls through to the built-in serve routes.
fn route_cell(
    executor: &CellExecutor,
    active: &AtomicU64,
    req: &sttlock_serve::http::Request,
) -> Option<Response> {
    if (req.method.as_str(), req.path.as_str()) != ("POST", "/v1/cell") {
        return None;
    }
    let body = String::from_utf8_lossy(&req.body);
    let request = match Json::parse(&body)
        .ok()
        .and_then(|v| CellRequest::from_json(&v))
    {
        Some(r) => r,
        None => {
            return Some(Response::error(
                400,
                "malformed or version-skewed cell request",
            ))
        }
    };
    sttlock_obs::counter("cluster.cells_executed", 1);
    active.fetch_add(1, Ordering::SeqCst);
    let record = executor.run(&request.cell, Duration::from_millis(request.timeout_ms));
    active.fetch_sub(1, Ordering::SeqCst);
    let response = CellResponse { record };
    Some(Response::json(200, response.to_json().to_string()))
}

/// Registers with the coordinator (retrying with capped exponential
/// backoff while it is unreachable), then heartbeats until stopped.
/// A heartbeat answered with `known: false` — a restarted coordinator —
/// drops back to the registration phase.
fn control_loop(
    coordinator: &str,
    id: &str,
    addr: &str,
    heartbeat: Duration,
    active: &AtomicU64,
    clock: &Budget,
    server_stop: &StopHandle,
) {
    let backoff = Backoff::default();
    'life: while !clock.is_cancelled() {
        // Phase 1: register, backing off while the coordinator is down.
        let mut attempt = 0u32;
        loop {
            if clock.is_cancelled() || server_stop.is_stopped() {
                break 'life;
            }
            let body = Register {
                worker: id.to_owned(),
                addr: addr.to_owned(),
            }
            .to_json()
            .to_string();
            match client::request(
                coordinator,
                "POST",
                "/cluster/register",
                Some(&body),
                CONTROL_TIMEOUT,
            ) {
                Ok(resp) if resp.status == 200 => break,
                _ => {
                    sttlock_obs::counter("cluster.register_retries", 1);
                    clock.sleep(backoff.delay(attempt));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
        // Phase 2: heartbeat until stopped or forgotten.
        loop {
            if clock.is_cancelled() || server_stop.is_stopped() {
                break 'life;
            }
            let body = Heartbeat {
                worker: id.to_owned(),
                load: active.load(Ordering::SeqCst),
                queue_depth: 0,
            }
            .to_json()
            .to_string();
            let known = client::request(
                coordinator,
                "POST",
                "/cluster/heartbeat",
                Some(&body),
                CONTROL_TIMEOUT,
            )
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| Json::parse(&resp.body_text()).ok())
            .and_then(|v| HeartbeatReply::from_json(&v))
            .map(|reply| reply.known);
            match known {
                Some(true) => {}
                // Forgotten (coordinator restarted) or unreachable:
                // fall back to the registration phase, which has the
                // backoff. Either way the worker outlives its
                // coordinator.
                Some(false) | None => continue 'life,
            }
            clock.sleep(heartbeat);
        }
    }
}
