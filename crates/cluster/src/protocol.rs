//! The coordinator/worker wire protocol.
//!
//! Every message is a JSON object carrying a `proto` version field;
//! decoding rejects any payload whose version differs from
//! [`PROTOCOL_VERSION`], so a mixed-version cluster degrades into
//! explicit redispatch (the coordinator treats an undecodable response
//! exactly like a dead worker) instead of silently merging records
//! produced under different semantics.
//!
//! Routes:
//!
//! * `POST /cluster/register` (coordinator) — a worker announces its
//!   id and dial-back address; re-registering refreshes the entry.
//! * `POST /cluster/heartbeat` (coordinator) — periodic liveness plus
//!   load/queue-depth; the reply says whether the coordinator knows the
//!   worker (a restarted coordinator answers `known: false`, which
//!   tells the worker to re-register).
//! * `POST /v1/cell` (worker) — one campaign cell; the response body
//!   is the executed [`RunRecord`].

use sttlock_campaign::json::Json;
use sttlock_campaign::{Cell, RunRecord};

/// Version of this wire protocol. Bump on any incompatible change to
/// the message shapes or cell/record encodings.
pub const PROTOCOL_VERSION: u32 = 1;

fn versioned(pairs: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![("proto", Json::from(u64::from(PROTOCOL_VERSION)))];
    all.extend(pairs);
    Json::obj(all)
}

/// Checks the version gate every decoder runs first.
fn check_proto(v: &Json) -> Option<()> {
    (v.get("proto")?.as_u64()? as u32 == PROTOCOL_VERSION).then_some(())
}

/// `POST /cluster/register` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Stable worker identity (survives re-registration).
    pub worker: String,
    /// Address the coordinator dials back on (`host:port`).
    pub addr: String,
}

impl Register {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        versioned(vec![
            ("worker", Json::from(self.worker.as_str())),
            ("addr", Json::from(self.addr.as_str())),
        ])
    }

    /// Decodes; `None` on malformed or version-skewed payloads.
    pub fn from_json(v: &Json) -> Option<Register> {
        check_proto(v)?;
        Some(Register {
            worker: v.get("worker")?.as_str()?.to_owned(),
            addr: v.get("addr")?.as_str()?.to_owned(),
        })
    }
}

/// `POST /cluster/heartbeat` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// The worker's identity.
    pub worker: String,
    /// Cells currently executing on the worker.
    pub load: u64,
    /// Requests admitted but not yet executing.
    pub queue_depth: u64,
}

impl Heartbeat {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        versioned(vec![
            ("worker", Json::from(self.worker.as_str())),
            ("load", Json::from(self.load)),
            ("queue_depth", Json::from(self.queue_depth)),
        ])
    }

    /// Decodes; `None` on malformed or version-skewed payloads.
    pub fn from_json(v: &Json) -> Option<Heartbeat> {
        check_proto(v)?;
        Some(Heartbeat {
            worker: v.get("worker")?.as_str()?.to_owned(),
            load: v.get("load")?.as_u64()?,
            queue_depth: v.get("queue_depth")?.as_u64()?,
        })
    }
}

/// The coordinator's reply to a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatReply {
    /// Whether the coordinator has this worker registered. `false`
    /// after a coordinator restart — the worker must re-register.
    pub known: bool,
}

impl HeartbeatReply {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        versioned(vec![("known", Json::from(self.known))])
    }

    /// Decodes; `None` on malformed or version-skewed payloads.
    pub fn from_json(v: &Json) -> Option<HeartbeatReply> {
        check_proto(v)?;
        Some(HeartbeatReply {
            known: v.get("known")?.as_bool()?,
        })
    }
}

/// `POST /v1/cell` body: one unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRequest {
    /// The grid cell to execute.
    pub cell: Cell,
    /// Per-cell wall budget, milliseconds (the campaign timeout).
    pub timeout_ms: u64,
}

impl CellRequest {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        versioned(vec![
            ("cell", self.cell.to_json()),
            ("timeout_ms", Json::from(self.timeout_ms)),
        ])
    }

    /// Decodes; `None` on malformed or version-skewed payloads.
    pub fn from_json(v: &Json) -> Option<CellRequest> {
        check_proto(v)?;
        Some(CellRequest {
            cell: Cell::from_json(v.get("cell")?)?,
            timeout_ms: v.get("timeout_ms")?.as_u64()?,
        })
    }
}

/// `POST /v1/cell` response: the executed record.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResponse {
    /// The record the worker produced.
    pub record: RunRecord,
}

impl CellResponse {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        versioned(vec![("record", self.record.to_json())])
    }

    /// Decodes; `None` on malformed or version-skewed payloads.
    pub fn from_json(v: &Json) -> Option<CellResponse> {
        check_proto(v)?;
        Some(CellResponse {
            record: RunRecord::from_json(v.get("record")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_campaign::{AttackKind, CircuitSpec, RunStatus, SelectionOverrides};

    #[test]
    fn every_message_round_trips() {
        let reg = Register {
            worker: "w-1".into(),
            addr: "127.0.0.1:4000".into(),
        };
        assert_eq!(
            Register::from_json(&Json::parse(&reg.to_json().to_string()).unwrap()),
            Some(reg)
        );

        let hb = Heartbeat {
            worker: "w-1".into(),
            load: 3,
            queue_depth: 7,
        };
        assert_eq!(
            Heartbeat::from_json(&Json::parse(&hb.to_json().to_string()).unwrap()),
            Some(hb)
        );
        for known in [true, false] {
            let reply = HeartbeatReply { known };
            assert_eq!(
                HeartbeatReply::from_json(&Json::parse(&reply.to_json().to_string()).unwrap()),
                Some(reply)
            );
        }

        let req = CellRequest {
            cell: Cell {
                circuit: CircuitSpec::Profile("s27".into()),
                algorithm: sttlock_core::SelectionAlgorithm::Dependent,
                seed: 9,
                attack: AttackKind::Sat { max_dips: 4 },
                overrides: SelectionOverrides::default(),
                fault: sttlock_fault::FaultModel::default(),
            },
            timeout_ms: 30_000,
        };
        assert_eq!(
            CellRequest::from_json(&Json::parse(&req.to_json().to_string()).unwrap()),
            Some(req.clone())
        );

        let resp = CellResponse {
            record: RunRecord::failure("s27", "dependent", 9, "sat", RunStatus::TimedOut),
        };
        assert_eq!(
            CellResponse::from_json(&Json::parse(&resp.to_json().to_string()).unwrap()),
            Some(resp)
        );
    }

    #[test]
    fn a_foreign_protocol_version_is_rejected_by_every_decoder() {
        let mut skewed = Register {
            worker: "w".into(),
            addr: "a".into(),
        }
        .to_json();
        if let Json::Obj(map) = &mut skewed {
            map.insert("proto".into(), Json::from(u64::from(PROTOCOL_VERSION) + 1));
        }
        assert_eq!(Register::from_json(&skewed), None);
        assert_eq!(Heartbeat::from_json(&skewed), None);
        assert_eq!(HeartbeatReply::from_json(&skewed), None);
        assert_eq!(CellRequest::from_json(&skewed), None);
        assert_eq!(CellResponse::from_json(&skewed), None);
    }
}
