//! Distributed campaign execution: a coordinator/worker cluster on the
//! serve HTTP stack.
//!
//! One coordinator process owns the campaign grid; any number of
//! worker processes join it over HTTP (`POST /cluster/register`, then
//! periodic heartbeats). The coordinator shards cells across workers
//! by content hash, ships each cell as a [`protocol::CellRequest`],
//! journals every dispatch and completion in a
//! [`journal::DispatchJournal`], and merges the records back in grid
//! order — the merged JSONL is byte-identical to a single-node
//! [`sttlock_campaign::execute`] run (modulo wall-clock fields), which
//! the integration tests assert byte for byte.
//!
//! Failure is the normal case the design is built around: a worker
//! that dies, hangs, or answers under a skewed protocol version is
//! evicted and its in-flight cells re-dispatched with capped
//! exponential backoff; a coordinator that crashes re-opens its
//! dispatch journal with `resume` and re-dispatches only the cells
//! without a durable clean completion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod journal;
pub mod protocol;
pub mod worker;

pub use coordinator::{start_coordinator, Coordinator, CoordinatorConfig};
pub use journal::{completed_map, DispatchEntry, DispatchJournal, OpenedDispatchJournal};
pub use protocol::PROTOCOL_VERSION;
pub use worker::{start_worker, Worker, WorkerConfig};
