//! Workspace-local stand-in for the subset of the `criterion` API that
//! sttlock's benches use.
//!
//! The build environment has no access to crates.io. This crate keeps
//! the `criterion_group!`/`criterion_main!`/`Criterion` surface so the
//! bench sources compile unchanged, and it **really measures**: each
//! benchmark is warmed up, auto-batched until a batch takes long enough
//! to time reliably, sampled `sample_size` times, and reported with
//! median/mean per-iteration wall time on stdout. There are no HTML
//! reports or statistical regressions — just honest numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Minimum wall time one timed batch should cover.
const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Re-export-compatible opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration annotation; reported as a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    batch: u64,
    sample_count: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and auto-batching: grow the batch until one batch
        // takes at least TARGET_BATCH (so timer noise stays small).
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= TARGET_BATCH || batch >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                8
            } else {
                (TARGET_BATCH.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 8) as u64
            };
            batch = batch.saturating_mul(grow);
        }
        self.batch = batch;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(
    full_id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        batch: 1,
        sample_count: sample_size.max(1),
        samples: Vec::with_capacity(sample_size.max(1)),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_id:<48} (no samples: bencher.iter was never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.3e} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.3e} B/s)")
        }
        None => String::new(),
    };
    println!(
        "{full_id:<48} median {:>12}/iter  mean {:>12}/iter  ({} samples × {} iters){rate}",
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len(),
        b.batch,
    );
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the work-per-iteration annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| {
            routine(b, input)
        });
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| routine(b));
        self
    }

    /// Ends the group (upstream writes reports here; we have printed
    /// every line already).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark harness object.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, None, |b| routine(b));
        self
    }
}

/// Declares a group-runner function calling each benchmark function with
/// a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); this
            // harness runs everything and ignores the arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("sta", "s641").to_string(), "sta/s641");
        assert_eq!(BenchmarkId::from_parameter("s641").to_string(), "s641");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
