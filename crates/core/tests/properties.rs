//! Property-based tests of the flow's central invariants on random
//! circuits and seeds:
//!
//! * replacement never changes the design's function;
//! * the redaction boundary is lossless (program ∘ redact = identity);
//! * parametric-aware selection respects its timing budget;
//! * hardening preserves function while never shrinking LUT fan-in.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_benchgen::Profile;
use sttlock_core::harden::{harden, HardenConfig};
use sttlock_core::select::{self, SelectionConfig};
use sttlock_core::{replace, Flow, SelectionAlgorithm};
use sttlock_netlist::CircuitView;
use sttlock_sim::Simulator;
use sttlock_sta::analyze_with;
use sttlock_techlib::Library;

fn equivalent(a: &sttlock_netlist::Netlist, b: &sttlock_netlist::Netlist, seed: u64) -> bool {
    let mut sa = Simulator::new(a).expect("a simulates");
    let mut sb = Simulator::new(b).expect("b simulates");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..48).all(|_| {
        let p: Vec<u64> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
        sa.step(&p).unwrap() == sb.step(&p).unwrap()
    })
}

fn arb_algorithm() -> impl Strategy<Value = SelectionAlgorithm> {
    prop::sample::select(vec![
        SelectionAlgorithm::Independent,
        SelectionAlgorithm::Dependent,
        SelectionAlgorithm::ParametricAware,
    ])
}

proptest! {
    // The flow is expensive; a modest case count still sweeps a wide
    // space of (circuit seed, flow seed, algorithm) combinations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn flow_preserves_function(
        circuit_seed in 0u64..1000,
        flow_seed in 0u64..1000,
        alg in arb_algorithm(),
    ) {
        let profile = Profile::custom("prop", 140, 7, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow.run(&netlist, alg, flow_seed).expect("flow runs");
        prop_assert!(equivalent(&netlist, &out.hybrid, circuit_seed ^ flow_seed));
        // Redaction boundary: lossless round trip.
        let (foundry, secret) = out.hybrid.redact();
        prop_assert_eq!(secret.len(), out.report.stt_count);
        let mut reprogrammed = foundry;
        reprogrammed.program(&secret);
        prop_assert_eq!(reprogrammed, out.hybrid);
    }

    #[test]
    fn parametric_respects_any_budget(
        circuit_seed in 0u64..1000,
        budget_tenths in 0u64..80,
    ) {
        let budget = budget_tenths as f64 / 10.0;
        let profile = Profile::custom("prop", 160, 8, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let mut flow = Flow::new(Library::predictive_90nm());
        flow.selection.timing_budget_pct = budget;
        match flow.run(&netlist, SelectionAlgorithm::ParametricAware, 3) {
            Ok(out) => prop_assert!(
                out.report.performance_degradation_pct <= budget + 1e-6,
                "{}% exceeds budget {budget}%",
                out.report.performance_degradation_pct
            ),
            // A zero budget can make every draw fail — that is a legal
            // outcome, not a violation.
            Err(sttlock_core::FlowError::NothingSelected) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    #[test]
    fn hardening_preserves_function_and_widens(
        circuit_seed in 0u64..1000,
        harden_seed in 0u64..1000,
    ) {
        let profile = Profile::custom("prop", 120, 6, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&netlist, SelectionAlgorithm::Independent, 1)
            .expect("flow runs");
        let before: usize = out
            .hybrid
            .node_ids()
            .filter(|&id| out.hybrid.node(id).is_lut())
            .map(|id| out.hybrid.node(id).fanin().len())
            .sum();
        let mut hardened = out.hybrid.clone();
        let mut rng = StdRng::seed_from_u64(harden_seed);
        harden(&mut hardened, &HardenConfig::default(), &mut rng).unwrap();
        let after: usize = hardened
            .node_ids()
            .filter(|&id| hardened.node(id).is_lut())
            .map(|id| hardened.node(id).fanin().len())
            .sum();
        prop_assert!(after >= before, "hardening must not narrow LUTs");
        prop_assert!(equivalent(&netlist, &hardened, harden_seed));
    }

    /// The copy-on-write replacement path must agree bit-for-bit with
    /// the legacy clone-and-mutate `replace::apply` on every field —
    /// hybrid netlist, bitstream contents *and order*, and the order of
    /// skipped nodes — under random selections from every algorithm.
    #[test]
    fn overlay_replacement_matches_legacy_apply(
        circuit_seed in 0u64..1000,
        select_seed in 0u64..1000,
        alg in arb_algorithm(),
    ) {
        let profile = Profile::custom("prop", 150, 7, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let lib = Library::predictive_90nm();
        let view = CircuitView::new(&netlist);
        let timing = analyze_with(&view, &lib);
        let selection = select::run_with_view(
            &view,
            &lib,
            alg,
            &SelectionConfig::default(),
            &mut StdRng::seed_from_u64(select_seed),
            &timing,
        );

        let legacy = replace::apply(&netlist, &selection);
        let cow = replace::apply_overlay(Arc::new(netlist.clone()), &selection);
        prop_assert_eq!(&cow.bitstream, &legacy.bitstream);
        prop_assert_eq!(&cow.skipped, &legacy.skipped);
        prop_assert_eq!(cow.overlay.materialize(), legacy.hybrid.clone());
        prop_assert_eq!(cow.into_replacement(), legacy);
    }
}
