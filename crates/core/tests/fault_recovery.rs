//! Acceptance and property tests for the fault-injection and
//! verify-and-repair layer:
//!
//! * a p=0 fault model is a true no-op — bit-identical netlist,
//!   bitstream and simulation outputs;
//! * an unfaulted device verifies clean with zero retries and zero
//!   channel writes;
//! * every single-LUT-row fault on a bundled ISCAS benchmark recovers
//!   within the default retry budget.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_benchgen::{profiles, Profile};
use sttlock_core::{verify_and_repair, Flow, RepairConfig, SelectionAlgorithm};
use sttlock_fault::{FaultInjector, FaultModel, PerfectChannel};
use sttlock_netlist::{Netlist, TruthTable};
use sttlock_sim::Simulator;
use sttlock_techlib::Library;

fn equivalent(a: &Netlist, b: &Netlist, seed: u64) -> bool {
    let mut sa = Simulator::new(a).expect("a simulates");
    let mut sb = Simulator::new(b).expect("b simulates");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..48).all(|_| {
        let p: Vec<u64> = (0..a.inputs().len()).map(|_| rng.gen()).collect();
        sa.step(&p).unwrap() == sb.step(&p).unwrap()
    })
}

fn arb_algorithm() -> impl Strategy<Value = SelectionAlgorithm> {
    prop::sample::select(vec![
        SelectionAlgorithm::Independent,
        SelectionAlgorithm::Dependent,
        SelectionAlgorithm::ParametricAware,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Injecting with every probability at zero must leave the device
    /// bit-identical to the un-faulted hybrid: no recorded faults, no
    /// overlay edits, the same bitstream, and the same simulation
    /// outputs on random vectors.
    #[test]
    fn p0_injection_is_bit_identical(
        circuit_seed in 0u64..1000,
        flow_seed in 0u64..1000,
        alg in arb_algorithm(),
    ) {
        let profile = Profile::custom("prop", 140, 7, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow.run(&netlist, alg, flow_seed).expect("flow runs");

        let mut device = out.overlay.clone();
        let mut injector = FaultInjector::new(FaultModel::write_failures(0.0), circuit_seed);
        prop_assert!(injector.model().is_noop());
        let injected = injector.corrupt(&mut device);
        prop_assert!(injected.is_empty());
        prop_assert_eq!(device.bitstream(), out.bitstream.clone());
        prop_assert_eq!(device.materialize(), out.hybrid.clone());
        prop_assert!(equivalent(&out.hybrid, &device.materialize(), flow_seed));
    }

    /// A device that came out of fabrication clean must verify as
    /// recovered without a single retry or channel write — the repair
    /// loop never "fixes" a healthy part.
    #[test]
    fn unfaulted_device_recovers_with_zero_retries(
        circuit_seed in 0u64..1000,
        flow_seed in 0u64..1000,
        alg in arb_algorithm(),
    ) {
        let profile = Profile::custom("prop", 140, 7, 7, 5);
        let netlist = profile.generate(&mut StdRng::seed_from_u64(circuit_seed));
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow.run(&netlist, alg, flow_seed).expect("flow runs");

        let mut device = out.overlay.clone();
        let report = verify_and_repair(
            &netlist,
            &mut device,
            &out.bitstream,
            &mut PerfectChannel,
            &RepairConfig::default(),
            flow_seed,
        )
        .expect("verification runs");
        prop_assert!(report.is_recovered());
        prop_assert_eq!(report.retries, 0);
        prop_assert_eq!(report.reprogram_attempts, 0);
        prop_assert_eq!(report.initial_mismatches, 0);
        prop_assert!(report.repaired_luts.is_empty());
        prop_assert!(report.failed_luts.is_empty());
    }
}

/// Acceptance criterion: with a perfect re-programming channel, every
/// single-LUT-row fault on a bundled ISCAS benchmark recovers within
/// the default retry budget. Each bitstream LUT gets one flipped row
/// (rotating through the rows so every row position is exercised), and
/// the first LUT additionally gets every one of its rows flipped.
#[test]
fn single_lut_row_faults_on_s641_always_recover() {
    let profile = profiles::by_name("s641").expect("bundled profile");
    let netlist = profile.generate(&mut StdRng::seed_from_u64(641));
    let flow = Flow::new(Library::predictive_90nm());
    let out = flow
        .run(&netlist, SelectionAlgorithm::ParametricAware, 641)
        .expect("flow runs");
    assert!(!out.bitstream.is_empty(), "selection produced LUTs");

    let mut cases: Vec<(usize, usize)> = out
        .bitstream
        .iter()
        .enumerate()
        .map(|(i, (_, t))| (i, i % t.rows()))
        .collect();
    let first_rows = out.bitstream[0].1.rows();
    cases.extend((0..first_rows).map(|row| (0, row)));

    for (lut, row) in cases {
        let (id, intended) = out.bitstream[lut];
        let mut device = out.overlay.clone();
        device.set_lut_config(
            id,
            TruthTable::new(intended.inputs(), intended.bits() ^ (1 << row)),
        );
        let cfg = RepairConfig::default();
        let report = verify_and_repair(
            &netlist,
            &mut device,
            &out.bitstream,
            &mut PerfectChannel,
            &cfg,
            (lut as u64) << 8 | row as u64,
        )
        .expect("verification runs");
        assert!(
            report.is_recovered(),
            "LUT #{lut} row {row}: verdict {} after {} retries",
            report.verdict,
            report.retries
        );
        assert!(report.retries <= cfg.max_retries as u64);
        assert!(report.failed_luts.is_empty());
    }
}
