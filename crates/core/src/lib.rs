//! The security-driven hybrid STT-CMOS design flow of
//! *"Hybrid STT-CMOS Designs for Reverse-engineering Prevention"*
//! (Winograd et al., DAC 2016).
//!
//! Given a synthesized gate-level netlist, the flow selects CMOS gates
//! and replaces them with reconfigurable non-volatile STT-based LUTs
//! ("missing gates") whose contents only the design house knows:
//!
//! * [`select::independent`] — a fixed number of random gates drawn from
//!   the sampled I/O paths (Section IV-A.1). Cheap, but a testing attack
//!   can rebuild each gate's truth table (Equation 1).
//! * [`select::dependent`] — Algorithm 1: every gate on the timing paths
//!   composing a longest non-critical I/O path, so missing gates feed
//!   missing gates and partial truth tables become unobtainable
//!   (Equation 2). Large performance cost.
//! * [`select::parametric`] — Algorithm 2: a few random multi-input
//!   gates per targeted timing path, re-drawn while the timing budget is
//!   violated, plus the *USL closure* (neighbours of un-selected path
//!   gates) so no partial table can be anchored (Equation 3). Near-zero
//!   performance cost.
//!
//! [`Flow`] packages selection, replacement, timing/power/area overhead
//! analysis (Table I), selection CPU time (Table II) and the analytic
//! security estimates (Figure 3) into one call.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sttlock_benchgen::Profile;
//! use sttlock_core::{Flow, SelectionAlgorithm};
//! use sttlock_techlib::Library;
//!
//! # fn main() -> Result<(), sttlock_core::FlowError> {
//! let profile = Profile::custom("demo", 150, 6, 8, 6);
//! let netlist = profile.generate(&mut rand::rngs::StdRng::seed_from_u64(7));
//! let flow = Flow::new(Library::predictive_90nm());
//! let outcome = flow.run(&netlist, SelectionAlgorithm::ParametricAware, 42)?;
//! assert!(outcome.report.stt_count > 0);
//! assert!(outcome.hybrid.lut_count() == outcome.report.stt_count);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harden;
pub mod oracle;
pub mod replace;
pub mod select;

pub mod flow;

mod report;

pub use flow::{
    verify_and_repair, verify_and_repair_budgeted, Flow, FlowError, FlowOutcome, RepairConfig,
    RepairReport, RepairVerdict,
};
pub use oracle::{FullSta, TimingOracle};
pub use report::FlowReport;
pub use select::{SelectionAlgorithm, SelectionConfig};
