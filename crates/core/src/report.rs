use std::time::Duration;

use sttlock_attack::estimate::SecurityEstimate;

/// The per-run report: everything the paper's Tables I–II and Figure 3
/// tabulate for one (benchmark, algorithm) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowReport {
    /// Relative clock-period degradation, percent (Table I).
    pub performance_degradation_pct: f64,
    /// Relative total-power overhead, percent (Table I).
    pub power_overhead_pct: f64,
    /// Relative leakage change, percent (negative = the LUTs' near-zero
    /// standby power reduced leakage).
    pub leakage_overhead_pct: f64,
    /// Relative area overhead, percent (Table I).
    pub area_overhead_pct: f64,
    /// Number of STT LUTs inserted (Table I "Number of STTs").
    pub stt_count: usize,
    /// Wall-clock time of the selection step (Table II).
    pub selection_time: Duration,
    /// Analytic attack-effort estimates (Figure 3).
    pub security: SecurityEstimate,
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} LUTs | perf +{:.2}% | power +{:.2}% | area +{:.2}% | N_bf {} | selected in {:.1?}",
            self.stt_count,
            self.performance_degradation_pct,
            self.power_overhead_pct,
            self.area_overhead_pct,
            self.security.n_bf,
            self.selection_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttlock_attack::estimate::BigEffort;

    #[test]
    fn display_shows_the_headline_numbers() {
        let r = FlowReport {
            performance_degradation_pct: 0.0,
            power_overhead_pct: 5.13,
            leakage_overhead_pct: -1.0,
            area_overhead_pct: 1.56,
            stt_count: 166,
            selection_time: Duration::from_millis(44_000),
            security: SecurityEstimate {
                n_indep: BigEffort::from_log10(3.0),
                n_dep: BigEffort::from_log10(40.0),
                n_bf: BigEffort::from_log10(219.783),
            },
        };
        let s = r.to_string();
        assert!(s.contains("166 LUTs"));
        assert!(s.contains("6.07E+219"));
    }
}
