//! Timing oracles for the parametric-aware selection.
//!
//! Algorithm 2 asks one question over and over: *"if this draw of gates
//! became LUTs, would the clock period still fit the budget?"*
//! [`TimingOracle`] abstracts how that question is answered so the
//! selection logic is written once:
//!
//! * [`FullSta`] clones the netlist and runs a complete
//!   [`analyze`](sttlock_sta::analyze) per query — the original
//!   (pre-incremental) behavior, kept as the reference implementation
//!   for differential tests and the benchmarks.
//! * [`IncrementalSta`] answers from its cached arrival state, touching
//!   only the fanout cone of the swapped gate.
//!
//! Both produce **bit-identical** clock periods (the incremental engine
//! evaluates the same max-fold expression on the same operand sets), so
//! a fixed seed yields byte-identical selections whichever oracle runs.

use sttlock_exec::{Budget, BudgetError};
use sttlock_netlist::{Netlist, NodeId};
use sttlock_sta::{analyze, IncrementalSta};
use sttlock_techlib::Library;

/// How the parametric selection probes hypothetical LUT swaps.
///
/// Implementations track a *current hypothesis* — the set of gates
/// swapped so far. [`swap_to_lut`](TimingOracle::swap_to_lut) and
/// [`revert_to_gate`](TimingOracle::revert_to_gate) edit that set;
/// [`clock_period_ns`](TimingOracle::clock_period_ns) evaluates it.
pub trait TimingOracle {
    /// Adds `id` (a CMOS standard cell in the original netlist) to the
    /// current swap hypothesis.
    fn swap_to_lut(&mut self, id: NodeId);

    /// Removes `id` from the hypothesis; it times as its original gate
    /// kind again.
    fn revert_to_gate(&mut self, id: NodeId);

    /// Minimum feasible clock period of the current hypothesis, ns.
    fn clock_period_ns(&mut self) -> f64;

    /// Clock period for each of `candidates` swapped **individually**
    /// on top of the current hypothesis (the hypothesis itself is left
    /// unchanged). The default probes sequentially; implementations may
    /// parallelize as long as the result is identical.
    fn eval_single_swaps(&mut self, candidates: &[NodeId]) -> Vec<f64> {
        candidates
            .iter()
            .map(|&id| {
                self.swap_to_lut(id);
                let period = self.clock_period_ns();
                self.revert_to_gate(id);
                period
            })
            .collect()
    }

    /// [`eval_single_swaps`](TimingOracle::eval_single_swaps) under a
    /// cooperative [`Budget`]: each probe checks the budget first (so a
    /// cancelled request stops between cone queries) and charges one
    /// step. With `None` the answers must be identical to the
    /// unbudgeted path.
    fn eval_single_swaps_budgeted(
        &mut self,
        candidates: &[NodeId],
        budget: Option<&Budget>,
    ) -> Result<Vec<f64>, BudgetError> {
        let Some(budget) = budget else {
            return Ok(self.eval_single_swaps(candidates));
        };
        let mut periods = Vec::with_capacity(candidates.len());
        for &id in candidates {
            budget.check()?;
            budget.charge(1);
            self.swap_to_lut(id);
            periods.push(self.clock_period_ns());
            self.revert_to_gate(id);
        }
        Ok(periods)
    }
}

/// Reference oracle: a scratch netlist mutated in place and re-analyzed
/// from scratch on every question.
#[derive(Debug, Clone)]
pub struct FullSta<'a> {
    original: &'a Netlist,
    lib: &'a Library,
    scratch: Netlist,
}

impl<'a> FullSta<'a> {
    /// A full-pass oracle over `netlist` with no gates swapped yet.
    pub fn new(netlist: &'a Netlist, lib: &'a Library) -> Self {
        FullSta {
            original: netlist,
            lib,
            scratch: netlist.clone(),
        }
    }
}

impl TimingOracle for FullSta<'_> {
    fn swap_to_lut(&mut self, id: NodeId) {
        self.scratch
            .replace_gate_with_lut(id)
            .expect("swap candidates are narrow standard cells");
    }

    fn revert_to_gate(&mut self, id: NodeId) {
        let kind = self
            .original
            .node(id)
            .gate_kind()
            .expect("swap candidates are standard cells");
        self.scratch.restore_lut_to_gate(id, kind);
    }

    fn clock_period_ns(&mut self) -> f64 {
        analyze(&self.scratch, self.lib).clock_period_ns()
    }
}

impl TimingOracle for IncrementalSta<'_> {
    fn swap_to_lut(&mut self, id: NodeId) {
        IncrementalSta::swap_to_lut(self, id);
    }

    fn revert_to_gate(&mut self, id: NodeId) {
        let kind = self
            .netlist()
            .node(id)
            .gate_kind()
            .expect("swap candidates are standard cells");
        self.restore_gate(id, kind);
    }

    fn clock_period_ns(&mut self) -> f64 {
        IncrementalSta::clock_period_ns(self)
    }

    fn eval_single_swaps(&mut self, candidates: &[NodeId]) -> Vec<f64> {
        self.batch_eval(candidates)
    }

    fn eval_single_swaps_budgeted(
        &mut self,
        candidates: &[NodeId],
        budget: Option<&Budget>,
    ) -> Result<Vec<f64>, BudgetError> {
        self.batch_eval_with(candidates, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_benchgen::Profile;

    #[test]
    fn oracles_agree_bit_for_bit() {
        let n = Profile::custom("oracle", 180, 8, 8, 5).generate(&mut StdRng::seed_from_u64(2));
        let lib = Library::predictive_90nm();
        let base = analyze(&n, &lib);
        let mut full = FullSta::new(&n, &lib);
        let mut inc = IncrementalSta::from_analysis(&n, &lib, &base);

        let gates: Vec<NodeId> = n
            .iter()
            .filter(|(_, node)| node.gate_kind().is_some() && node.fanin().len() <= 6)
            .map(|(id, _)| id)
            .take(24)
            .collect();
        // Interleave persistent swaps with single-swap probes.
        for (i, &id) in gates.iter().enumerate() {
            if i % 3 == 0 {
                TimingOracle::swap_to_lut(&mut full, id);
                TimingOracle::swap_to_lut(&mut inc, id);
            }
            assert_eq!(
                TimingOracle::clock_period_ns(&mut full).to_bits(),
                TimingOracle::clock_period_ns(&mut inc).to_bits()
            );
        }
        let probes: Vec<NodeId> = gates
            .iter()
            .copied()
            .filter(|&g| gates.iter().position(|&x| x == g).unwrap() % 3 != 0)
            .collect();
        let a = full.eval_single_swaps(&probes);
        let b = inc.eval_single_swaps(&probes);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
