//! CMOS-gate → STT-LUT replacement.
//!
//! Turns a [`Selection`] into a *hybrid
//! netlist*: each selected gate becomes a programmed LUT with the same
//! wiring and function. The programming bitstream — the secret that
//! never reaches the foundry — is returned alongside; callers ship
//! `hybrid.redact()` to manufacturing and keep the bitstream for
//! post-fabrication configuration (Figure 2's flow).

use std::sync::Arc;

use sttlock_netlist::{HybridOverlay, Netlist, NodeId, TruthTable};

use crate::select::Selection;

/// Outcome of a replacement pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Replacement {
    /// The programmed hybrid netlist (design-house view).
    pub hybrid: Netlist,
    /// Per-LUT configuration — the design house's secret.
    pub bitstream: Vec<(NodeId, TruthTable)>,
    /// Selected gates skipped because their fan-in exceeds the LUT
    /// capacity (never happens for standard-cell mapped netlists, which
    /// stay at fan-in ≤ 4).
    pub skipped: Vec<NodeId>,
}

/// Applies a selection to a netlist by cloning it and mutating in
/// place.
///
/// This is the legacy reference implementation; [`apply_overlay`] is the
/// copy-on-write equivalent for callers sharing one immutable base
/// across threads. The two are differentially tested to produce
/// bit-identical hybrids, bitstreams and `skipped` lists.
pub fn apply(netlist: &Netlist, selection: &Selection) -> Replacement {
    let mut hybrid = netlist.clone();
    let mut bitstream = Vec::with_capacity(selection.gates.len());
    let mut skipped = Vec::new();
    for &id in &selection.gates {
        match hybrid.replace_gate_with_lut(id) {
            Ok(table) => bitstream.push((id, table)),
            Err(_) => skipped.push(id),
        }
    }
    Replacement {
        hybrid,
        bitstream,
        skipped,
    }
}

/// Outcome of a copy-on-write replacement pass: the base netlist stays
/// shared behind its [`Arc`]; only the replaced gates live in the
/// overlay's sparse edit map.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayReplacement {
    /// The programmed hybrid as an overlay over the shared base.
    pub overlay: HybridOverlay,
    /// Per-LUT configuration — the design house's secret.
    pub bitstream: Vec<(NodeId, TruthTable)>,
    /// Selected gates skipped because their fan-in exceeds the LUT
    /// capacity (same ordering as [`Replacement::skipped`]).
    pub skipped: Vec<NodeId>,
}

impl OverlayReplacement {
    /// Owns the hybrid: bit-identical to [`apply`] on the same base and
    /// selection.
    pub fn into_replacement(self) -> Replacement {
        Replacement {
            hybrid: self.overlay.materialize(),
            bitstream: self.bitstream,
            skipped: self.skipped,
        }
    }
}

/// Applies a selection as a copy-on-write overlay over a shared base.
///
/// Decisions (which gates are replaced, which are skipped, the order of
/// both lists) match [`apply`] exactly — the overlay's
/// `replace_gate_with_lut` has the same semantics as the netlist's.
pub fn apply_overlay(base: Arc<Netlist>, selection: &Selection) -> OverlayReplacement {
    let mut overlay = HybridOverlay::new(base);
    let mut bitstream = Vec::with_capacity(selection.gates.len());
    let mut skipped = Vec::new();
    for &id in &selection.gates {
        match overlay.replace_gate_with_lut(id) {
            Ok(table) => bitstream.push((id, table)),
            Err(_) => skipped.push(id),
        }
    }
    OverlayReplacement {
        overlay,
        bitstream,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectionAlgorithm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sttlock_benchgen::Profile;
    use sttlock_sim::Simulator;

    fn selection_of(n: &Netlist, names: &[&str]) -> Selection {
        Selection {
            algorithm: SelectionAlgorithm::Independent,
            gates: names.iter().map(|s| n.find(s).unwrap()).collect(),
            usl_closure: Vec::new(),
            paths_considered: 0,
        }
    }

    #[test]
    fn hybrid_is_functionally_identical() {
        let profile = Profile::custom("r", 120, 5, 6, 5);
        let n = profile.generate(&mut StdRng::seed_from_u64(3));
        // Replace a third of the gates.
        let gates: Vec<NodeId> = n
            .iter()
            .filter(|(_, node)| node.gate_kind().is_some() && node.fanin().len() <= 6)
            .map(|(id, _)| id)
            .step_by(3)
            .collect();
        let sel = Selection {
            algorithm: SelectionAlgorithm::Independent,
            gates,
            usl_closure: Vec::new(),
            paths_considered: 0,
        };
        let rep = apply(&n, &sel);
        assert!(rep.skipped.is_empty());
        assert_eq!(rep.hybrid.lut_count(), rep.bitstream.len());

        let mut sim_a = Simulator::new(&n).unwrap();
        let mut sim_b = Simulator::new(&rep.hybrid).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..64 {
            let pat: Vec<u64> = (0..n.inputs().len()).map(|_| rng.gen()).collect();
            assert_eq!(sim_a.step(&pat).unwrap(), sim_b.step(&pat).unwrap());
        }
    }

    #[test]
    fn redact_program_round_trip_through_replacement() {
        let profile = Profile::custom("r", 60, 3, 4, 3);
        let n = profile.generate(&mut StdRng::seed_from_u64(8));
        let first_gate = n
            .iter()
            .find(|(_, node)| node.gate_kind().is_some())
            .map(|(id, _)| n.node_name(id).to_owned())
            .unwrap();
        let sel = selection_of(&n, &[&first_gate]);
        let rep = apply(&n, &sel);
        let (mut foundry, secret) = rep.hybrid.redact();
        assert_eq!(secret, rep.bitstream);
        assert_eq!(foundry.lut_config(rep.bitstream[0].0), None);
        foundry.program(&secret);
        assert_eq!(foundry, rep.hybrid);
    }

    #[test]
    fn empty_selection_is_identity() {
        let profile = Profile::custom("r", 30, 2, 3, 2);
        let n = profile.generate(&mut StdRng::seed_from_u64(9));
        let sel = Selection {
            algorithm: SelectionAlgorithm::Independent,
            gates: Vec::new(),
            usl_closure: Vec::new(),
            paths_considered: 0,
        };
        let rep = apply(&n, &sel);
        assert_eq!(rep.hybrid, n);
        assert!(rep.bitstream.is_empty());
    }
}
