//! The three CMOS-gate selection algorithms of Section IV-A.
//!
//! All three share the paper's path machinery: sample a fraction of the
//! components, DFS each to a primary input and a primary output through
//! at least two flip-flops, drop paths touching the critical path, sort
//! by flip-flop depth ([`sttlock_netlist::paths`]).

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use sttlock_exec::{Budget, BudgetError};
use sttlock_netlist::paths::{retain_avoiding, sample_io_paths_with, IoPath, PathSamplerConfig};
use sttlock_netlist::{CircuitView, Netlist, NodeId};
use sttlock_sta::{analyze_with, degradation_pct_from_periods, IncrementalSta, TimingAnalysis};
use sttlock_techlib::Library;

use crate::oracle::{FullSta, TimingOracle};

/// Which selection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionAlgorithm {
    /// Random, possibly unconnected gates (Section IV-A.1).
    Independent,
    /// All gates of a longest non-critical I/O path (Algorithm 1).
    Dependent,
    /// Sparse on-path gates plus the USL neighbour closure (Algorithm 2).
    ParametricAware,
}

impl SelectionAlgorithm {
    /// All algorithms, in the paper's Table I column order.
    pub const ALL: [SelectionAlgorithm; 3] = [
        SelectionAlgorithm::Independent,
        SelectionAlgorithm::Dependent,
        SelectionAlgorithm::ParametricAware,
    ];

    /// Table-header style short name.
    pub fn short_name(self) -> &'static str {
        match self {
            SelectionAlgorithm::Independent => "Indep",
            SelectionAlgorithm::Dependent => "Dep",
            SelectionAlgorithm::ParametricAware => "Para",
        }
    }
}

impl std::str::FromStr for SelectionAlgorithm {
    type Err = String;

    /// Accepts the short and long spellings every front end (CLI flags,
    /// service request bodies) uses, so they reject unknown algorithms
    /// with one shared message.
    fn from_str(s: &str) -> Result<SelectionAlgorithm, String> {
        match s {
            "indep" | "independent" => Ok(SelectionAlgorithm::Independent),
            "dep" | "dependent" => Ok(SelectionAlgorithm::Dependent),
            "para" | "parametric" | "parametric-aware" => Ok(SelectionAlgorithm::ParametricAware),
            other => Err(format!("unknown algorithm `{other}` (indep|dep|para)")),
        }
    }
}

impl std::fmt::Display for SelectionAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectionAlgorithm::Independent => "independent",
            SelectionAlgorithm::Dependent => "dependent",
            SelectionAlgorithm::ParametricAware => "parametric-aware",
        };
        f.write_str(s)
    }
}

/// Tunables shared by the selection algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConfig {
    /// Path sampler parameters (paper defaults: 2 % sample, ≥2 FFs).
    pub sampler: PathSamplerConfig,
    /// Gates replaced by independent selection (paper: always 5).
    pub independent_gates: usize,
    /// Timing paths (FF-to-FF combinational segments) targeted by
    /// parametric-aware selection; `None` scales with circuit size
    /// (≈ one segment per 500 gates).
    pub parametric_paths: Option<usize>,
    /// Gates tentatively selected per targeted timing path.
    pub gates_per_path: usize,
    /// Random re-draws (the "go to L1" loop) before shrinking the
    /// per-path selection.
    pub max_retries: usize,
    /// Allowed clock-period degradation (%) for the parametric timing
    /// check. The paper's constraint is the design's timing budget;
    /// its Table I shows parametric runs landing at 0–7.75 %, so the
    /// default allows a small margin over the synthesized period.
    pub timing_budget_pct: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            sampler: PathSamplerConfig {
                // The paper's 2 % sampling, with enough seeds and DFS
                // retries that small circuits still surface deep paths.
                min_samples: 16,
                attempts_per_seed: 8,
                ..PathSamplerConfig::default()
            },
            independent_gates: 5,
            parametric_paths: None,
            gates_per_path: 2,
            max_retries: 8,
            timing_budget_pct: 5.0,
        }
    }
}

/// A finished gate selection: which gates become LUTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// The algorithm that produced it.
    pub algorithm: SelectionAlgorithm,
    /// Gates to replace, deduplicated, arena order.
    pub gates: Vec<NodeId>,
    /// Of those, gates added by the USL neighbour closure (empty for the
    /// other algorithms).
    pub usl_closure: Vec<NodeId>,
    /// Sampled I/O paths that drove the selection (diagnostics).
    pub paths_considered: usize,
}

/// Samples, filters and sorts the I/O paths per Section IV: paths
/// touching the critical path are removed using a baseline timing
/// analysis.
///
/// "Touching" means sharing a *combinational gate* with the critical
/// path — sharing a primary input or flip-flop is harmless (high-fan-out
/// sources sit on most paths) and filtering on those would starve the
/// selection on dense circuits. A small sample can land entirely on
/// critical-path gates, so when the filter would drop every sampled path
/// the sampler is re-run with escalating effort (more seeds, more DFS
/// attempts) before giving up; only if no clean path exists at all is
/// the unfiltered list used, and then only the algorithms with their own
/// timing checks can still avoid slowing the clock.
pub fn candidate_paths<R: Rng + ?Sized>(
    view: &CircuitView<'_>,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Vec<IoPath> {
    let netlist = view.netlist();
    let critical_gates: Vec<NodeId> = timing
        .critical_path()
        .iter()
        .copied()
        .filter(|&id| netlist.node(id).is_combinational())
        .collect();
    let mut sampler = cfg.sampler;
    let mut paths = Vec::new();
    for _round in 0..4 {
        paths = sample_io_paths_with(view, &sampler, rng);
        let mut filtered = paths.clone();
        retain_avoiding(&mut filtered, &critical_gates);
        if !filtered.is_empty() {
            return filtered;
        }
        sampler.sample_fraction = (sampler.sample_fraction * 4.0).min(1.0);
        sampler.min_samples = sampler.min_samples.saturating_mul(4);
        sampler.attempts_per_seed = sampler.attempts_per_seed.saturating_mul(2);
    }
    paths
}

/// Independent selection (Section IV-A.1): a pre-determined number of
/// random gates out of all nodes on the candidate paths. Falls back to
/// the whole gate population when sampling finds no usable path (e.g.
/// purely combinational designs).
pub fn independent<R: Rng + ?Sized>(
    view: &CircuitView<'_>,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Selection {
    let netlist = view.netlist();
    let paths = candidate_paths(view, timing, cfg, rng);
    let mut pool: Vec<NodeId> = paths
        .iter()
        .flat_map(|p| p.combinational_nodes(netlist))
        .collect();
    pool.sort_unstable();
    pool.dedup();
    if pool.is_empty() {
        pool = netlist
            .iter()
            .filter(|(_, n)| n.is_combinational())
            .map(|(id, _)| id)
            .collect();
    }
    let mut gates: Vec<NodeId> = pool
        .choose_multiple(rng, cfg.independent_gates.min(pool.len()))
        .copied()
        .collect();
    gates.sort_unstable();
    Selection {
        algorithm: SelectionAlgorithm::Independent,
        gates,
        usl_closure: Vec::new(),
        paths_considered: paths.len(),
    }
}

/// Dependent selection (Algorithm 1): replace **all** gates on the
/// timing paths composing a longest non-critical I/O path. Among the
/// deepest sampled paths one is chosen at random, per the Section IV
/// implementation notes.
pub fn dependent<R: Rng + ?Sized>(
    view: &CircuitView<'_>,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Selection {
    let netlist = view.netlist();
    let paths = candidate_paths(view, timing, cfg, rng);
    let paths_considered = paths.len();
    let Some(deepest) = paths.first().map(|p| p.ff_count) else {
        return Selection {
            algorithm: SelectionAlgorithm::Dependent,
            gates: Vec::new(),
            usl_closure: Vec::new(),
            paths_considered: 0,
        };
    };
    // Ties at the maximum depth: pick one at random.
    let deepest_paths: Vec<&IoPath> = paths.iter().filter(|p| p.ff_count == deepest).collect();
    let chosen = deepest_paths.choose(rng).expect("nonempty by construction");
    let mut gates = chosen.combinational_nodes(netlist);
    gates.sort_unstable();
    gates.dedup();
    Selection {
        algorithm: SelectionAlgorithm::Dependent,
        gates,
        usl_closure: Vec::new(),
        paths_considered,
    }
}

/// Parametric-aware dependent selection (Algorithm 2).
///
/// For each targeted timing path: randomly select `gates_per_path` gates
/// with ≥2 inputs, verify the timing budget with the LUT delays swapped
/// in, and re-draw (the paper's "go to L1") on violation — shrinking the
/// draw when retries run out. Unselected path gates form the USL; every
/// off-path gate driving or driven by a USL gate is then also replaced.
pub fn parametric<'a, R: Rng + ?Sized>(
    view: &CircuitView<'a>,
    lib: &'a Library,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Selection {
    let mut oracle = IncrementalSta::from_analysis_with(view, lib, timing);
    parametric_with(view, timing, cfg, rng, &mut oracle, None)
        .expect("an unbudgeted parametric selection cannot be cancelled")
}

/// [`parametric`] under a cooperative [`Budget`]: every oracle question
/// (path-draw timing check or USL-closure wave probe) first checks the
/// budget and then charges one step, so a cancelled or expired request
/// stops mid-selection — between cone queries, not at stage boundaries.
///
/// Given an untripped budget the drawing sequence is identical to
/// [`parametric`], so the selection bytes match.
pub fn parametric_budgeted<'a, R: Rng + ?Sized>(
    view: &CircuitView<'a>,
    lib: &'a Library,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
    budget: &Budget,
) -> Result<Selection, BudgetError> {
    let mut oracle = IncrementalSta::from_analysis_with(view, lib, timing);
    parametric_with(view, timing, cfg, rng, &mut oracle, Some(budget))
}

/// [`parametric`] driven by the full-reanalysis oracle ([`FullSta`]):
/// the pre-incremental behavior, kept as the reference implementation.
///
/// For a fixed seed this produces a selection byte-identical to
/// [`parametric`] (the oracles agree bit for bit); it exists so the
/// differential tests and the `incremental_sta` benchmark have the slow
/// path to compare against.
pub fn parametric_full_sta<'a, R: Rng + ?Sized>(
    view: &CircuitView<'a>,
    lib: &'a Library,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Selection {
    let mut oracle = FullSta::new(view.netlist(), lib);
    parametric_with(view, timing, cfg, rng, &mut oracle, None)
        .expect("an unbudgeted parametric selection cannot be cancelled")
}

/// Algorithm 2 over any [`TimingOracle`].
///
/// The oracle's running hypothesis mirrors `selected` at all times:
/// accepted draws stay swapped, rejected draws are reverted before the
/// next question.
fn parametric_with<R: Rng + ?Sized, O: TimingOracle>(
    view: &CircuitView<'_>,
    timing: &TimingAnalysis,
    cfg: &SelectionConfig,
    rng: &mut R,
    oracle: &mut O,
    budget: Option<&Budget>,
) -> Result<Selection, BudgetError> {
    if let Some(b) = budget {
        b.check()?;
    }
    let netlist = view.netlist();
    let paths = candidate_paths(view, timing, cfg, rng);
    let paths_considered = paths.len();

    // The paper targets *timing paths* — the FF-to-FF combinational
    // segments of the sampled I/O paths. Pool and deduplicate them.
    let mut seen_segments: HashSet<Vec<NodeId>> = HashSet::new();
    let mut segments: Vec<Vec<NodeId>> = Vec::new();
    for path in &paths {
        for seg in path.segments(netlist) {
            if seg.len() >= 2 && seen_segments.insert(seg.clone()) {
                segments.push(seg);
            }
        }
    }
    let want_segments = cfg
        .parametric_paths
        .unwrap_or_else(|| (netlist.gate_count() / 500).max(1))
        .min(segments.len());
    let targeted: Vec<&Vec<NodeId>> = segments.choose_multiple(rng, want_segments).collect();

    let budget_pct = cfg.timing_budget_pct;
    let base_period = timing.clock_period_ns();
    let fits = |period: f64| degradation_pct_from_periods(base_period, period) <= budget_pct + 1e-9;
    let mut selected: HashSet<NodeId> = HashSet::new();
    let mut usl: Vec<NodeId> = Vec::new();

    // Accepts `draw` if the hybrid still meets the timing budget;
    // otherwise reverts it. Returns whether it was kept.
    let try_accept = |oracle: &mut O, draw: &[NodeId]| -> bool {
        for &id in draw {
            oracle.swap_to_lut(id);
        }
        if fits(oracle.clock_period_ns()) {
            true
        } else {
            for &id in draw {
                oracle.revert_to_gate(id);
            }
            false
        }
    };

    for segment in &targeted {
        let candidates: Vec<NodeId> = segment
            .iter()
            .copied()
            .filter(|&id| {
                let node = netlist.node(id);
                node.gate_kind().is_some()
                    && node.fanin().len() >= 2
                    && node.fanin().len() <= 6
                    && !selected.contains(&id)
            })
            .collect();
        if !candidates.is_empty() {
            let mut take = cfg.gates_per_path.min(candidates.len());
            let mut accepted: Vec<NodeId> = Vec::new();
            'shrink: while take > 0 {
                for _ in 0..cfg.max_retries.max(1) {
                    if let Some(b) = budget {
                        b.check()?;
                        b.charge(1);
                    }
                    let draw: Vec<NodeId> =
                        candidates.choose_multiple(rng, take).copied().collect();
                    if try_accept(oracle, &draw) {
                        accepted = draw;
                        break 'shrink;
                    }
                }
                take -= 1;
            }
            selected.extend(accepted.iter().copied());
        }
        // Every unreplaced gate on the targeted path belongs to the USL
        // — including single-input and wide gates that were never draw
        // candidates (they still leak partial truth tables if their
        // neighbourhood stays CMOS).
        usl.extend(segment.iter().copied().filter(|id| !selected.contains(id)));
    }

    // USL closure: replace immediate off-path drivers and readers of
    // every USL gate so no partial truth table can anchor on them. Each
    // closure gate passes the same timing budget (the "parametric-aware"
    // property extends to the closure; gates that would blow the budget
    // are skipped).
    let on_path: HashSet<NodeId> = targeted.iter().flat_map(|s| s.iter().copied()).collect();
    let fanout = view.fanout();
    let mut closure: Vec<NodeId> = Vec::new();
    let mut neighbours: Vec<NodeId> = Vec::new();
    for &u in &usl {
        neighbours.extend(netlist.node(u).fanin().iter().copied());
        neighbours.extend(fanout[u.index()].iter().copied());
    }
    neighbours.sort_unstable();
    neighbours.dedup();
    neighbours.retain(|&cand| {
        !on_path.contains(&cand) && !selected.contains(&cand) && is_replaceable(netlist, cand)
    });

    // Wave-based scan: batch-probe every pending candidate against the
    // current hypothesis, commit the first passer, re-probe the rest.
    // Candidates ahead of the first passer saw the same hypothesis a
    // sequential scan would have shown them, so the decisions (and the
    // final selection) are identical to probing one by one — there are
    // just `acceptances + 1` waves instead of `candidates` full probes,
    // and each wave's probes run in parallel on the incremental oracle.
    let mut pending = neighbours;
    while !pending.is_empty() {
        let periods = oracle.eval_single_swaps_budgeted(&pending, budget)?;
        let first_pass = periods.iter().position(|&p| fits(p));
        match first_pass {
            None => break,
            Some(i) => {
                let id = pending[i];
                oracle.swap_to_lut(id);
                selected.insert(id);
                closure.push(id);
                pending.drain(..=i);
            }
        }
    }

    let mut gates: Vec<NodeId> = selected.into_iter().collect();
    gates.sort_unstable();
    closure.sort_unstable();
    Ok(Selection {
        algorithm: SelectionAlgorithm::ParametricAware,
        gates,
        usl_closure: closure,
        paths_considered,
    })
}

fn is_replaceable(netlist: &Netlist, id: NodeId) -> bool {
    let node = netlist.node(id);
    node.gate_kind().is_some() && node.fanin().len() <= 6
}

/// Runs the chosen algorithm, analyzing baseline timing first.
pub fn run<R: Rng + ?Sized>(
    netlist: &Netlist,
    lib: &Library,
    algorithm: SelectionAlgorithm,
    cfg: &SelectionConfig,
    rng: &mut R,
) -> Selection {
    let view = CircuitView::new(netlist);
    let timing = analyze_with(&view, lib);
    run_with_view(&view, lib, algorithm, cfg, rng, &timing)
}

/// Runs the chosen algorithm against an existing baseline analysis,
/// avoiding a redundant full pass when the caller has one already.
pub fn run_with_timing<R: Rng + ?Sized>(
    netlist: &Netlist,
    lib: &Library,
    algorithm: SelectionAlgorithm,
    cfg: &SelectionConfig,
    rng: &mut R,
    timing: &TimingAnalysis,
) -> Selection {
    run_with_view(&CircuitView::new(netlist), lib, algorithm, cfg, rng, timing)
}

/// Runs the chosen algorithm over a shared [`CircuitView`], reusing its
/// memoized fanout/topo facts across path sampling, the incremental
/// timing oracle and the USL closure. Callers holding a view (e.g.
/// [`crate::Flow`]) go through here so the graph facts are computed
/// once per circuit.
pub fn run_with_view<'a, R: Rng + ?Sized>(
    view: &CircuitView<'a>,
    lib: &'a Library,
    algorithm: SelectionAlgorithm,
    cfg: &SelectionConfig,
    rng: &mut R,
    timing: &TimingAnalysis,
) -> Selection {
    match algorithm {
        SelectionAlgorithm::Independent => independent(view, timing, cfg, rng),
        SelectionAlgorithm::Dependent => dependent(view, timing, cfg, rng),
        SelectionAlgorithm::ParametricAware => parametric(view, lib, timing, cfg, rng),
    }
}

/// [`run_with_view`] under a cooperative [`Budget`].
///
/// The parametric algorithm checks (and charges) the budget on every
/// timing-oracle question; the cheaper sampling-only algorithms check
/// before and after their path work. Given an untripped budget the
/// selection is identical to [`run_with_view`].
pub fn run_with_view_budgeted<'a, R: Rng + ?Sized>(
    view: &CircuitView<'a>,
    lib: &'a Library,
    algorithm: SelectionAlgorithm,
    cfg: &SelectionConfig,
    rng: &mut R,
    timing: &TimingAnalysis,
    budget: &Budget,
) -> Result<Selection, BudgetError> {
    budget.check()?;
    match algorithm {
        SelectionAlgorithm::Independent => {
            let sel = independent(view, timing, cfg, rng);
            budget.check()?;
            Ok(sel)
        }
        SelectionAlgorithm::Dependent => {
            let sel = dependent(view, timing, cfg, rng);
            budget.check()?;
            Ok(sel)
        }
        SelectionAlgorithm::ParametricAware => {
            parametric_budgeted(view, lib, timing, cfg, rng, budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_benchgen::Profile;
    use sttlock_sta::{analyze, performance_degradation_pct};

    fn circuit() -> Netlist {
        Profile::custom("sel", 220, 8, 8, 6).generate(&mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn independent_picks_requested_count() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(1);
        let sel = run(
            &n,
            &lib,
            SelectionAlgorithm::Independent,
            &SelectionConfig::default(),
            &mut rng,
        );
        assert_eq!(sel.gates.len(), 5);
        assert!(sel.usl_closure.is_empty());
        for &g in &sel.gates {
            assert!(n.node(g).is_combinational());
        }
    }

    #[test]
    fn dependent_takes_a_whole_path() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(2);
        let sel = run(
            &n,
            &lib,
            SelectionAlgorithm::Dependent,
            &SelectionConfig::default(),
            &mut rng,
        );
        assert!(sel.gates.len() > 1, "a deep path has several gates");
        // Dependency: at least one selected gate drives another through
        // pure combinational logic or a flip-flop chain along the path.
        let view = CircuitView::new(&n);
        let connected = sel.gates.iter().any(|&a| {
            sel.gates
                .iter()
                .any(|&b| a != b && view.comb_reachable(a, b))
        });
        assert!(connected, "dependent selection must chain missing gates");
    }

    #[test]
    fn dependent_avoids_critical_path() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let timing = analyze(&n, &lib);
        let critical: HashSet<NodeId> = timing.critical_path().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = dependent(
            &CircuitView::new(&n),
            &timing,
            &SelectionConfig::default(),
            &mut rng,
        );
        for g in &sel.gates {
            assert!(!critical.contains(g), "critical-path gate selected");
        }
    }

    #[test]
    fn parametric_meets_timing_budget() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let timing = analyze(&n, &lib);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SelectionConfig::default();
        let sel = parametric(&CircuitView::new(&n), &lib, &timing, &cfg, &mut rng);
        assert!(!sel.gates.is_empty());
        // The on-path picks respected the budget during selection; the
        // USL closure may add off-path gates. Verify the paper's claim
        // that the overall degradation stays small: replace everything
        // and compare against the dependent strategy.
        let mut hybrid = n.clone();
        for &g in &sel.gates {
            hybrid.replace_gate_with_lut(g).unwrap();
        }
        let para_deg = performance_degradation_pct(&timing, &analyze(&hybrid, &lib));

        let mut rng2 = StdRng::seed_from_u64(4);
        let dep = dependent(&CircuitView::new(&n), &timing, &cfg, &mut rng2);
        let mut dep_hybrid = n.clone();
        for &g in &dep.gates {
            if n.node(g).fanin().len() <= 6 {
                dep_hybrid.replace_gate_with_lut(g).unwrap();
            }
        }
        let dep_deg = performance_degradation_pct(&timing, &analyze(&dep_hybrid, &lib));
        assert!(
            para_deg <= dep_deg + 1e-9,
            "parametric ({para_deg:.2}%) must not exceed dependent ({dep_deg:.2}%)"
        );
    }

    #[test]
    fn parametric_closure_covers_usl_neighbours() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let timing = analyze(&n, &lib);
        let mut rng = StdRng::seed_from_u64(6);
        let sel = parametric(
            &CircuitView::new(&n),
            &lib,
            &timing,
            &SelectionConfig::default(),
            &mut rng,
        );
        // Closure gates are part of the selection.
        let set: HashSet<NodeId> = sel.gates.iter().copied().collect();
        for c in &sel.usl_closure {
            assert!(set.contains(c));
        }
    }

    #[test]
    fn selection_is_reproducible_per_seed() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let cfg = SelectionConfig::default();
        for alg in SelectionAlgorithm::ALL {
            let a = run(&n, &lib, alg, &cfg, &mut StdRng::seed_from_u64(9));
            let b = run(&n, &lib, alg, &cfg, &mut StdRng::seed_from_u64(9));
            assert_eq!(a, b, "{alg}");
        }
    }

    #[test]
    fn parametric_matches_full_sta_reference() {
        // The incremental oracle must not change a single decision: for a
        // fixed seed the selection is byte-identical to the full-reanalysis
        // reference, across circuit sizes.
        let lib = Library::predictive_90nm();
        let cfg = SelectionConfig::default();
        for (gates, seed) in [(220usize, 1u64), (220, 9), (400, 5), (700, 13)] {
            let n =
                Profile::custom("par", gates, 8, 8, 6).generate(&mut StdRng::seed_from_u64(seed));
            let timing = analyze(&n, &lib);
            let view = CircuitView::new(&n);
            let fast = parametric(
                &view,
                &lib,
                &timing,
                &cfg,
                &mut StdRng::seed_from_u64(seed * 7 + 1),
            );
            let reference = parametric_full_sta(
                &view,
                &lib,
                &timing,
                &cfg,
                &mut StdRng::seed_from_u64(seed * 7 + 1),
            );
            assert_eq!(fast, reference, "gates={gates} seed={seed}");
        }
    }

    #[test]
    fn usl_includes_single_input_gates() {
        // Regression: the USL is *all* unreplaced gates on the targeted
        // path. Inverters can never be drawn (LUT replacement needs ≥2
        // inputs) but must still enter the USL so their off-path
        // neighbours get closed over — otherwise the inverter's partial
        // truth table anchors a testing attack.
        use sttlock_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("inv_usl");
        b.input("a");
        b.input("c");
        b.gate("g0", GateKind::And, &["a", "c"]);
        b.dff("ff1", "g0");
        b.gate("g1", GateKind::And, &["ff1", "c"]);
        b.gate("inv", GateKind::Not, &["g1"]);
        b.dff("ff2", "inv");
        b.gate("g2", GateKind::And, &["ff2", "c"]);
        b.output("g2");
        // Off-path reader of the inverter: only reachable via the USL.
        b.gate("spy", GateKind::And, &["inv", "a"]);
        b.output("spy");
        let n = b.finish().unwrap();
        let lib = Library::predictive_90nm();
        let timing = analyze(&n, &lib);
        // The circuit is three gate-levels deep, so any LUT swap costs a
        // large fraction of the period — the budget is generous because
        // this test is about USL membership, not timing.
        let cfg = SelectionConfig {
            parametric_paths: Some(1),
            gates_per_path: 1,
            timing_budget_pct: 300.0,
            ..SelectionConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let sel = parametric(&CircuitView::new(&n), &lib, &timing, &cfg, &mut rng);
        let spy = n.find("spy").unwrap();
        assert!(
            sel.usl_closure.contains(&spy),
            "closure must reach the inverter's off-path reader: {sel:?}"
        );
        assert!(sel.gates.contains(&spy));
        // The inverter itself stays CMOS: it is USL, not a draw candidate.
        let inv = n.find("inv").unwrap();
        assert!(!sel.gates.contains(&inv));
    }

    #[test]
    fn budgeted_selection_matches_unbudgeted_and_honours_cancel() {
        let n = circuit();
        let lib = Library::predictive_90nm();
        let timing = analyze(&n, &lib);
        let view = CircuitView::new(&n);
        let cfg = SelectionConfig::default();
        for alg in SelectionAlgorithm::ALL {
            let plain = run_with_view(
                &view,
                &lib,
                alg,
                &cfg,
                &mut StdRng::seed_from_u64(11),
                &timing,
            );
            let budget = Budget::unbounded();
            let budgeted = run_with_view_budgeted(
                &view,
                &lib,
                alg,
                &cfg,
                &mut StdRng::seed_from_u64(11),
                &timing,
                &budget,
            )
            .unwrap();
            assert_eq!(plain, budgeted, "{alg}");
            if alg == SelectionAlgorithm::ParametricAware {
                assert!(budget.steps_spent() > 0, "oracle queries must charge");
            }
        }
        let cancelled = Budget::unbounded();
        cancelled.cancel();
        let err = run_with_view_budgeted(
            &view,
            &lib,
            SelectionAlgorithm::ParametricAware,
            &cfg,
            &mut StdRng::seed_from_u64(11),
            &timing,
            &cancelled,
        );
        assert_eq!(err, Err(BudgetError::Cancelled));
    }

    #[test]
    fn combinational_circuit_falls_back() {
        use sttlock_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.input("c");
        b.gate("g1", GateKind::And, &["a", "c"]);
        b.gate("g2", GateKind::Or, &["g1", "c"]);
        b.output("g2");
        let n = b.finish().unwrap();
        let lib = Library::predictive_90nm();
        let mut rng = StdRng::seed_from_u64(10);
        let sel = run(
            &n,
            &lib,
            SelectionAlgorithm::Independent,
            &SelectionConfig::default(),
            &mut rng,
        );
        assert_eq!(sel.gates.len(), 2, "fallback pool covers all gates");
    }
}
