//! LUT hardening against machine-learning attacks (Section IV-A.3).
//!
//! The paper proposes two measures that blow up the per-LUT hypothesis
//! space beyond the "one simple gate" assumption an ML/decamouflaging
//! attacker would like to make:
//!
//! * **Decoy inputs** — an under-filled LUT gains extra inputs wired to
//!   arbitrary circuit signals; the programmed table simply ignores
//!   them, but the attacker cannot know which inputs are live.
//! * **Function absorption** — a LUT swallows a single-fan-out driving
//!   gate, implementing a complex function such as `(A·(B⊕C))+D`
//!   instead of one standard cell.
//!
//! Both transforms preserve the design's function exactly (the hybrid
//! netlist keeps simulating identically) while multiplying the candidate
//! count `P` the attacks of Equations 2–3 must consider.

use std::error::Error;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use sttlock_netlist::{CircuitView, Netlist, Node, NodeId, TruthTable};

/// Why the hardening pass refused to run.
///
/// These used to be `assert!` process aborts; batch drivers need them
/// as recordable failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HardenError {
    /// `max_fanin` exceeds the 6-input LUT limit of the technology.
    FaninTooWide {
        /// The requested maximum fan-in.
        requested: usize,
    },
    /// The netlist contains a redacted LUT — hardening needs the
    /// programmed view (harden first, then [`Netlist::redact`]).
    RedactedLut {
        /// Name of the first unprogrammed LUT found.
        name: String,
    },
}

impl fmt::Display for HardenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardenError::FaninTooWide { requested } => {
                write!(f, "LUTs support at most 6 inputs (requested {requested})")
            }
            HardenError::RedactedLut { name } => write!(
                f,
                "harden requires the programmed view; LUT `{name}` is redacted"
            ),
        }
    }
}

impl Error for HardenError {}

/// Hardening tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardenConfig {
    /// Probability of adding a decoy input to each LUT with spare width.
    pub decoy_probability: f64,
    /// Whether to absorb single-fan-out driving gates into LUTs.
    pub absorb: bool,
    /// Maximum LUT fan-in after hardening (≤ 6).
    pub max_fanin: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            decoy_probability: 0.5,
            absorb: true,
            max_fanin: 4,
        }
    }
}

/// What the hardening pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardenReport {
    /// Decoy inputs wired in.
    pub decoys_added: usize,
    /// Gates absorbed into downstream LUTs.
    pub gates_absorbed: usize,
    /// STT cells (truth-table rows) after hardening — the device's fault
    /// surface. Every decoy input doubles the victim LUT's share, so
    /// hardening trades fault exposure for obscurity; fault campaigns
    /// read this to normalize recovery rates.
    pub fault_surface_rows: usize,
}

/// STT cells at risk in a hybrid: the total truth-table rows across
/// programmed LUTs (one non-volatile cell per row). This is the universe
/// the per-row probabilities of a fault model apply to.
pub fn fault_surface(netlist: &Netlist) -> usize {
    netlist
        .iter()
        .filter_map(|(id, _)| netlist.lut_config(id))
        .map(|t| t.rows())
        .sum()
}

/// Hardens every programmed LUT of a hybrid netlist in place.
///
/// The pass is function-preserving: the absorbed gates keep driving
/// their nets (they become structural decoys when the LUT was their only
/// reader), and decoy inputs are ignored by the extended truth tables.
///
/// # Errors
///
/// Returns [`HardenError::FaninTooWide`] for a `max_fanin` above 6 and
/// [`HardenError::RedactedLut`] when the netlist is not the programmed
/// view — harden first, then [`redact`](Netlist::redact). (Both were
/// `assert!` aborts before the campaign engine needed recorded
/// failures.) Errors are detected before any mutation, so on `Err` the
/// netlist is unchanged.
pub fn harden<R: Rng + ?Sized>(
    netlist: &mut Netlist,
    cfg: &HardenConfig,
    rng: &mut R,
) -> Result<HardenReport, HardenError> {
    if cfg.max_fanin > 6 {
        return Err(HardenError::FaninTooWide {
            requested: cfg.max_fanin,
        });
    }
    let mut report = HardenReport::default();
    let luts: Vec<NodeId> = netlist
        .iter()
        .filter(|(_, n)| n.is_lut())
        .map(|(id, _)| id)
        .collect();
    for &id in &luts {
        if netlist.lut_config(id).is_none() {
            return Err(HardenError::RedactedLut {
                name: netlist.node_name(id).to_owned(),
            });
        }
    }

    if cfg.absorb {
        // Snapshot the fanout before the absorb loop mutates wiring
        // (matching the pass's historical stale-fanout semantics: a
        // gate absorbed into one LUT is not re-counted for the next).
        let fanout = CircuitView::new(netlist).fanout_arc();
        for &lut in &luts {
            if try_absorb(netlist, &fanout, lut, cfg.max_fanin) {
                report.gates_absorbed += 1;
            }
        }
    }

    let all_signals: Vec<NodeId> = netlist
        .iter()
        .filter(|(_, n)| !matches!(n, Node::Const(_)))
        .map(|(id, _)| id)
        .collect();
    for &lut in &luts {
        let width = netlist.node(lut).fanin().len();
        if width >= cfg.max_fanin || !rng.gen_bool(cfg.decoy_probability) {
            continue;
        }
        if try_add_decoy(netlist, lut, &all_signals, rng) {
            report.decoys_added += 1;
        }
    }
    report.fault_surface_rows = fault_surface(netlist);
    Ok(report)
}

/// Absorbs one single-fan-out driving gate into the LUT, if any fits.
fn try_absorb(
    netlist: &mut Netlist,
    fanout: &[Vec<NodeId>],
    lut: NodeId,
    max_fanin: usize,
) -> bool {
    let lut_fanin = netlist.node(lut).fanin().to_vec();
    let table = netlist.lut_config(lut).expect("programmed");
    for (pin, &driver) in lut_fanin.iter().enumerate() {
        let Node::Gate { kind, fanin: g_in } = netlist.node(driver) else {
            continue;
        };
        if fanout[driver.index()].len() != 1 {
            continue; // other readers still need the gate's output
        }
        let g_kind = *kind;
        let g_in = g_in.clone();
        // Merged inputs: LUT inputs with `pin` replaced by the gate's
        // inputs (deduplicated, order: remaining LUT pins then gate pins).
        let mut merged: Vec<NodeId> = Vec::new();
        for (i, &f) in lut_fanin.iter().enumerate() {
            if i != pin && !merged.contains(&f) {
                merged.push(f);
            }
        }
        for &h in &g_in {
            if !merged.contains(&h) {
                merged.push(h);
            }
        }
        if merged.len() > max_fanin || merged.is_empty() {
            continue;
        }
        // Build the composite table by evaluating gate-into-LUT for every
        // assignment of the merged inputs.
        let g_table = TruthTable::from_gate(g_kind, g_in.len());
        let rows = 1usize << merged.len();
        let mut bits = 0u64;
        for row in 0..rows {
            let value_of = |sig: NodeId| -> bool {
                let idx = merged.iter().position(|&m| m == sig).expect("merged input");
                (row >> idx) & 1 == 1
            };
            let mut g_row = 0usize;
            for (i, &h) in g_in.iter().enumerate() {
                if value_of(h) {
                    g_row |= 1 << i;
                }
            }
            let g_out = g_table.eval(g_row);
            let mut l_row = 0usize;
            for (i, &f) in lut_fanin.iter().enumerate() {
                let v = if i == pin { g_out } else { value_of(f) };
                if v {
                    l_row |= 1 << i;
                }
            }
            if table.eval(l_row) {
                bits |= 1 << row;
            }
        }
        let new_table = TruthTable::new(merged.len(), bits);
        if netlist.rewire_lut(lut, merged, Some(new_table)).is_ok() {
            return true;
        }
    }
    false
}

/// Wires one decoy input into the LUT, extending the table to ignore it.
fn try_add_decoy<R: Rng + ?Sized>(
    netlist: &mut Netlist,
    lut: NodeId,
    signals: &[NodeId],
    rng: &mut R,
) -> bool {
    let fanin = netlist.node(lut).fanin().to_vec();
    let table = netlist.lut_config(lut).expect("programmed");
    for _ in 0..8 {
        let &candidate = signals.choose(rng).expect("nonempty netlist");
        if candidate == lut || fanin.contains(&candidate) {
            continue;
        }
        // Reject signals downstream of the LUT (combinational cycle);
        // `rewire_lut` re-checks and rolls back, so a cheap pre-filter
        // plus the rollback is enough. The view is rebuilt per query:
        // earlier decoys in this loop already rewired the netlist, so a
        // cached fanout would answer for stale wiring.
        if CircuitView::new(netlist).comb_reachable(lut, candidate) {
            continue;
        }
        let mut new_fanin = fanin.clone();
        new_fanin.push(candidate);
        // Duplicate the table: output independent of the new top input.
        let old_rows = table.rows();
        let bits = table.bits() | (table.bits() << old_rows);
        let new_table = TruthTable::new(new_fanin.len(), bits);
        if netlist.rewire_lut(lut, new_fanin, Some(new_table)).is_ok() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sttlock_netlist::{GateKind, NetlistBuilder};
    use sttlock_sim::Simulator;

    /// d AND (a XOR c) → LUT on the outer AND; the XOR has a single
    /// fan-out, so absorption turns the LUT into the paper's example
    /// shape `A·(B⊕C)`.
    fn absorbable() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.input("d");
        b.gate("x", GateKind::Xor, &["a", "c"]);
        b.gate("y", GateKind::And, &["x", "d"]);
        b.output("y");
        let mut n = b.finish().unwrap();
        let y = n.find("y").unwrap();
        n.replace_gate_with_lut(y).unwrap();
        n
    }

    fn equivalent(a: &Netlist, b: &Netlist, inputs: usize, seed: u64) -> bool {
        let mut sa = Simulator::new(a).unwrap();
        let mut sb = Simulator::new(b).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..64).all(|_| {
            let pat: Vec<u64> = (0..inputs).map(|_| rng.gen()).collect();
            sa.step(&pat).unwrap() == sb.step(&pat).unwrap()
        })
    }

    #[test]
    fn decoys_inflate_the_reported_fault_surface() {
        let n = absorbable();
        let before = fault_surface(&n);
        assert_eq!(before, 4); // one 2-input LUT
        let mut hardened = n.clone();
        let cfg = HardenConfig {
            decoy_probability: 1.0,
            absorb: true,
            max_fanin: 6,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = harden(&mut hardened, &cfg, &mut rng).unwrap();
        assert_eq!(report.fault_surface_rows, fault_surface(&hardened));
        if report.decoys_added + report.gates_absorbed > 0 {
            assert!(report.fault_surface_rows > before);
        }
    }

    #[test]
    fn absorption_preserves_function_and_widens_lut() {
        let n = absorbable();
        let mut hardened = n.clone();
        let cfg = HardenConfig {
            decoy_probability: 0.0,
            absorb: true,
            max_fanin: 4,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let report = harden(&mut hardened, &cfg, &mut rng).unwrap();
        assert_eq!(report.gates_absorbed, 1);
        let y = hardened.find("y").unwrap();
        assert_eq!(hardened.node(y).fanin().len(), 3, "A·(B⊕C) takes 3 inputs");
        assert!(equivalent(&n, &hardened, 3, 2));
    }

    #[test]
    fn decoys_preserve_function() {
        let n = absorbable();
        let mut hardened = n.clone();
        let cfg = HardenConfig {
            decoy_probability: 1.0,
            absorb: false,
            max_fanin: 4,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = harden(&mut hardened, &cfg, &mut rng).unwrap();
        assert!(report.decoys_added >= 1);
        let y = hardened.find("y").unwrap();
        assert!(hardened.node(y).fanin().len() > 2);
        assert!(equivalent(&n, &hardened, 3, 4));
    }

    #[test]
    fn hardening_respects_max_fanin() {
        let mut n = absorbable();
        let cfg = HardenConfig {
            decoy_probability: 1.0,
            absorb: true,
            max_fanin: 4,
        };
        let mut rng = StdRng::seed_from_u64(5);
        harden(&mut n, &cfg, &mut rng).unwrap();
        for (_, node) in n.iter() {
            if node.is_lut() {
                assert!(node.fanin().len() <= 4);
            }
        }
    }

    #[test]
    fn gate_with_multiple_readers_is_not_absorbed() {
        let mut b = NetlistBuilder::new("m");
        b.input("a");
        b.input("c");
        b.gate("x", GateKind::Xor, &["a", "c"]);
        b.gate("y", GateKind::And, &["x", "a"]);
        b.gate("z", GateKind::Or, &["x", "c"]); // second reader of x
        b.output("y");
        b.output("z");
        let mut n = b.finish().unwrap();
        let y = n.find("y").unwrap();
        n.replace_gate_with_lut(y).unwrap();
        let cfg = HardenConfig {
            decoy_probability: 0.0,
            absorb: true,
            max_fanin: 4,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let report = harden(&mut n, &cfg, &mut rng).unwrap();
        assert_eq!(report.gates_absorbed, 0);
    }

    #[test]
    fn refuses_redacted_luts_with_an_error() {
        let n = absorbable();
        let (mut stripped, _) = n.redact();
        let before = stripped.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let err = harden(&mut stripped, &HardenConfig::default(), &mut rng).unwrap_err();
        assert!(matches!(err, HardenError::RedactedLut { .. }), "{err}");
        assert_eq!(stripped, before, "failed harden must not mutate");
    }

    #[test]
    fn refuses_oversized_fanin_with_an_error() {
        let mut n = absorbable();
        let cfg = HardenConfig {
            max_fanin: 7,
            ..HardenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let err = harden(&mut n, &cfg, &mut rng).unwrap_err();
        assert_eq!(err, HardenError::FaninTooWide { requested: 7 });
    }
}
