use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock_attack::estimate::security_estimate;
use sttlock_netlist::{CircuitView, Netlist};
use sttlock_power::{analyze_area, analyze_power, OverheadReport};
use sttlock_sim::activity::estimate_activity_with;
use sttlock_sim::SimError;
use sttlock_sta::{analyze, analyze_with, performance_degradation_pct};
use sttlock_techlib::Library;

use crate::replace;
use crate::report::FlowReport;
use crate::select::{self, SelectionAlgorithm, SelectionConfig};

/// Errors surfaced by the flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The input netlist could not be simulated for activity estimation
    /// (e.g. it already contains redacted LUTs).
    Simulation(SimError),
    /// The selection produced no replaceable gate — the circuit is too
    /// small or offers no usable I/O path.
    NothingSelected,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Simulation(e) => write!(f, "activity estimation failed: {e}"),
            FlowError::NothingSelected => {
                write!(f, "selection produced no replaceable gate")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Simulation(e) => Some(e),
            FlowError::NothingSelected => None,
        }
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Simulation(e)
    }
}

/// Result of a full security-driven flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The programmed hybrid netlist (design-house view).
    pub hybrid: Netlist,
    /// The LUT programming bitstream — keep it away from the foundry.
    pub bitstream: Vec<(sttlock_netlist::NodeId, sttlock_netlist::TruthTable)>,
    /// Overheads, security estimates and selection CPU time.
    pub report: FlowReport,
    /// The selection that was applied (for diagnostics/ablation).
    pub selection: select::Selection,
}

impl FlowOutcome {
    /// The foundry view: the hybrid netlist with every LUT redacted.
    pub fn foundry_view(&self) -> Netlist {
        self.hybrid.redact().0
    }
}

/// The security-driven hybrid STT-CMOS design flow (Figure 2).
///
/// Owns the technology library and the selection tunables; [`run`](Flow::run)
/// executes selection → replacement → analysis for one algorithm choice.
#[derive(Debug, Clone)]
pub struct Flow {
    lib: Library,
    /// Selection tunables (public: ablations tweak them directly).
    pub selection: SelectionConfig,
    /// Random-pattern cycles for activity estimation.
    pub activity_cycles: usize,
}

impl Flow {
    /// A flow over the given library with the paper-default settings.
    pub fn new(lib: Library) -> Self {
        Flow {
            lib,
            selection: SelectionConfig::default(),
            activity_cycles: 256,
        }
    }

    /// The library in use.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Runs the flow on `netlist` with the chosen algorithm. The seed
    /// fixes the random selection, making runs reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Simulation`] if the netlist cannot be
    /// simulated and [`FlowError::NothingSelected`] if no gate could be
    /// selected at all.
    pub fn run(
        &self,
        netlist: &Netlist,
        algorithm: SelectionAlgorithm,
        seed: u64,
    ) -> Result<FlowOutcome, FlowError> {
        self.run_shared(&Arc::new(netlist.clone()), algorithm, seed)
    }

    /// [`run`](Flow::run) over a shared base netlist: the campaign
    /// engine holds one `Arc<Netlist>` per generated circuit and every
    /// worker/algorithm cell runs against it without cloning. Gate
    /// replacement is applied as a copy-on-write overlay over the same
    /// base.
    ///
    /// # Errors
    ///
    /// As [`run`](Flow::run).
    pub fn run_shared(
        &self,
        base: &Arc<Netlist>,
        algorithm: SelectionAlgorithm,
        seed: u64,
    ) -> Result<FlowOutcome, FlowError> {
        let netlist: &Netlist = base;
        let mut rng = StdRng::seed_from_u64(seed);

        // Baseline analyses on the pure-CMOS netlist, all sharing one
        // memoized graph view (fanout/topo computed once).
        let view = CircuitView::new(netlist);
        let base_timing = analyze_with(&view, &self.lib);
        let mut activity_rng = StdRng::seed_from_u64(seed ^ 0x5EED_AC71);
        let activity = estimate_activity_with(&view, self.activity_cycles, &mut activity_rng)?;
        let base_power = analyze_power(netlist, &self.lib, &activity);
        let base_area = analyze_area(netlist, &self.lib);

        // Selection (timed: this is the Table II measurement). The
        // baseline analysis above seeds the selection's incremental
        // timing engine instead of being recomputed.
        let t0 = Instant::now();
        let selection = select::run_with_view(
            &view,
            &self.lib,
            algorithm,
            &self.selection,
            &mut rng,
            &base_timing,
        );
        let selection_time = t0.elapsed();
        if selection.gates.is_empty() {
            return Err(FlowError::NothingSelected);
        }

        // Replacement and hybrid analyses. The activity report indexes by
        // arena position, which replacement preserves; LUT power ignores
        // activity anyway (it is content- and activity-independent).
        let replacement = replace::apply_overlay(base.clone(), &selection).into_replacement();
        let hybrid_timing = analyze(&replacement.hybrid, &self.lib);
        let hybrid_power = analyze_power(&replacement.hybrid, &self.lib, &activity);
        let hybrid_area = analyze_area(&replacement.hybrid, &self.lib);

        let overhead = OverheadReport::between(&base_power, base_area, &hybrid_power, hybrid_area);
        let security = security_estimate(&replacement.hybrid);

        let report = FlowReport {
            performance_degradation_pct: performance_degradation_pct(&base_timing, &hybrid_timing),
            power_overhead_pct: overhead.power_pct,
            leakage_overhead_pct: overhead.leakage_pct,
            area_overhead_pct: overhead.area_pct,
            stt_count: replacement.hybrid.lut_count(),
            selection_time,
            security,
        };
        Ok(FlowOutcome {
            hybrid: replacement.hybrid,
            bitstream: replacement.bitstream,
            report,
            selection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sttlock_benchgen::Profile;
    use sttlock_sim::Simulator;

    fn circuit() -> Netlist {
        Profile::custom("flow", 250, 10, 8, 6).generate(&mut StdRng::seed_from_u64(21))
    }

    #[test]
    fn flow_produces_functional_hybrid() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::Independent, 1)
            .expect("flow succeeds");
        assert_eq!(out.report.stt_count, 5);
        // Functional equivalence of the programmed hybrid.
        let mut sa = Simulator::new(&n).unwrap();
        let mut sb = Simulator::new(&out.hybrid).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            let pat: Vec<u64> = (0..n.inputs().len()).map(|_| rng.gen()).collect();
            assert_eq!(sa.step(&pat).unwrap(), sb.step(&pat).unwrap());
        }
        // The foundry view hides every configuration.
        let foundry = out.foundry_view();
        assert_eq!(foundry.lut_count(), out.report.stt_count);
        assert!(foundry
            .node_ids()
            .all(|id| foundry.lut_config(id).is_none()));
    }

    #[test]
    fn all_algorithms_run_and_order_security() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let indep = flow.run(&n, SelectionAlgorithm::Independent, 3).unwrap();
        let dep = flow.run(&n, SelectionAlgorithm::Dependent, 3).unwrap();
        let para = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 3)
            .unwrap();
        // Figure 3's ordering: dependent/parametric dwarf independent.
        assert!(dep.report.security.n_dep.log10() > indep.report.security.n_indep.log10());
        assert!(para.report.security.n_bf.log10() > indep.report.security.n_indep.log10());
    }

    #[test]
    fn parametric_timing_is_no_worse_than_dependent() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let dep = flow.run(&n, SelectionAlgorithm::Dependent, 5).unwrap();
        let para = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 5)
            .unwrap();
        assert!(
            para.report.performance_degradation_pct
                <= dep.report.performance_degradation_pct + 1e-9
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let a = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 7)
            .unwrap();
        let b = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 7)
            .unwrap();
        assert_eq!(a.hybrid, b.hybrid);
        assert_eq!(a.bitstream, b.bitstream);
    }

    #[test]
    fn overheads_are_positive_for_power_and_area() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        for alg in SelectionAlgorithm::ALL {
            let out = flow.run(&n, alg, 11).unwrap();
            assert!(out.report.power_overhead_pct > 0.0, "{alg}");
            assert!(out.report.area_overhead_pct > 0.0, "{alg}");
        }
    }
}
