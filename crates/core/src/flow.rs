//! The end-to-end design flow ([`Flow`]) and the post-fabrication
//! verify-and-repair loop ([`verify_and_repair`]).

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock_attack::estimate::security_estimate;
use sttlock_exec::{Budget, BudgetError};
use sttlock_fault::ProgrammingChannel;
use sttlock_netlist::{CircuitView, HybridOverlay, Netlist, NodeId, TruthTable};
use sttlock_power::{analyze_area, analyze_power, OverheadReport};
use sttlock_sat::equiv::{check_equivalence, EquivResult};
use sttlock_sim::activity::estimate_activity_with;
use sttlock_sim::{SimError, Simulator};
use sttlock_sta::{analyze, analyze_with, performance_degradation_pct};
use sttlock_techlib::Library;

use crate::replace;
use crate::report::FlowReport;
use crate::select::{self, SelectionAlgorithm, SelectionConfig};

/// Errors surfaced by the flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The input netlist could not be simulated for activity estimation
    /// (e.g. it already contains redacted LUTs).
    Simulation(SimError),
    /// The selection produced no replaceable gate — the circuit is too
    /// small or offers no usable I/O path.
    NothingSelected,
    /// The verify-and-repair loop could not even compare the device
    /// against its golden model (interface mismatch, unprogrammed LUT in
    /// the reference, inconsistent equivalence witness).
    Verification(String),
    /// The caller's [`Budget`] tripped — cancelled, past its deadline or
    /// out of steps — and the flow stopped cooperatively mid-stage.
    Budget(BudgetError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Simulation(e) => write!(f, "activity estimation failed: {e}"),
            FlowError::NothingSelected => {
                write!(f, "selection produced no replaceable gate")
            }
            FlowError::Verification(what) => write!(f, "verification impossible: {what}"),
            FlowError::Budget(e) => write!(f, "flow stopped: {e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Simulation(e) => Some(e),
            FlowError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Simulation(e)
    }
}

impl From<BudgetError> for FlowError {
    fn from(e: BudgetError) -> Self {
        FlowError::Budget(e)
    }
}

/// Result of a full security-driven flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The programmed hybrid netlist (design-house view).
    pub hybrid: Netlist,
    /// The same hybrid as a copy-on-write overlay over the shared golden
    /// base — the natural *device* handle for fault injection and
    /// [`verify_and_repair`], since cone queries on the golden
    /// [`CircuitView`] stay valid for it.
    pub overlay: HybridOverlay,
    /// The LUT programming bitstream — keep it away from the foundry.
    pub bitstream: Vec<(sttlock_netlist::NodeId, sttlock_netlist::TruthTable)>,
    /// Overheads, security estimates and selection CPU time.
    pub report: FlowReport,
    /// The selection that was applied (for diagnostics/ablation).
    pub selection: select::Selection,
}

impl FlowOutcome {
    /// The foundry view: the hybrid netlist with every LUT redacted.
    pub fn foundry_view(&self) -> Netlist {
        self.hybrid.redact().0
    }
}

/// The security-driven hybrid STT-CMOS design flow (Figure 2).
///
/// Owns the technology library and the selection tunables; [`run`](Flow::run)
/// executes selection → replacement → analysis for one algorithm choice.
#[derive(Debug, Clone)]
pub struct Flow {
    lib: Library,
    /// Selection tunables (public: ablations tweak them directly).
    pub selection: SelectionConfig,
    /// Random-pattern cycles for activity estimation.
    pub activity_cycles: usize,
}

impl Flow {
    /// A flow over the given library with the paper-default settings.
    pub fn new(lib: Library) -> Self {
        Flow {
            lib,
            selection: SelectionConfig::default(),
            activity_cycles: 256,
        }
    }

    /// The library in use.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Runs the flow on `netlist` with the chosen algorithm. The seed
    /// fixes the random selection, making runs reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Simulation`] if the netlist cannot be
    /// simulated and [`FlowError::NothingSelected`] if no gate could be
    /// selected at all.
    pub fn run(
        &self,
        netlist: &Netlist,
        algorithm: SelectionAlgorithm,
        seed: u64,
    ) -> Result<FlowOutcome, FlowError> {
        self.run_shared(&Arc::new(netlist.clone()), algorithm, seed)
    }

    /// [`run`](Flow::run) over a shared base netlist: the campaign
    /// engine holds one `Arc<Netlist>` per generated circuit and every
    /// worker/algorithm cell runs against it without cloning. Gate
    /// replacement is applied as a copy-on-write overlay over the same
    /// base.
    ///
    /// # Errors
    ///
    /// As [`run`](Flow::run).
    pub fn run_shared(
        &self,
        base: &Arc<Netlist>,
        algorithm: SelectionAlgorithm,
        seed: u64,
    ) -> Result<FlowOutcome, FlowError> {
        self.run_budgeted(base, algorithm, seed, &Budget::unbounded())
    }

    /// [`run_shared`](Flow::run_shared) under a cooperative [`Budget`]:
    /// the budget is checked between stages and inside the selection's
    /// timing-oracle loop (every cone query checks and charges), so a
    /// cancelled or expired request stops mid-selection rather than
    /// running the stage to completion. With an untripped budget the
    /// outcome is byte-identical to [`run_shared`](Flow::run_shared).
    ///
    /// # Errors
    ///
    /// As [`run`](Flow::run), plus [`FlowError::Budget`] when the budget
    /// trips.
    pub fn run_budgeted(
        &self,
        base: &Arc<Netlist>,
        algorithm: SelectionAlgorithm,
        seed: u64,
        budget: &Budget,
    ) -> Result<FlowOutcome, FlowError> {
        let netlist: &Netlist = base;
        let mut rng = StdRng::seed_from_u64(seed);
        budget.check()?;

        // Baseline analyses on the pure-CMOS netlist, all sharing one
        // memoized graph view (fanout/topo computed once).
        let view = CircuitView::new(netlist);
        let base_timing = analyze_with(&view, &self.lib);
        let mut activity_rng = StdRng::seed_from_u64(seed ^ 0x5EED_AC71);
        let activity = {
            let _s = sttlock_obs::span!("flow.activity", cycles = self.activity_cycles as u64);
            estimate_activity_with(&view, self.activity_cycles, &mut activity_rng)?
        };
        let base_power = analyze_power(netlist, &self.lib, &activity);
        let base_area = analyze_area(netlist, &self.lib);
        budget.check()?;

        // Selection (timed: this is the Table II measurement). The
        // baseline analysis above seeds the selection's incremental
        // timing engine instead of being recomputed.
        let sel_span = sttlock_obs::span!("flow.selection", algorithm = algorithm.to_string());
        let t0 = Instant::now();
        let selection = select::run_with_view_budgeted(
            &view,
            &self.lib,
            algorithm,
            &self.selection,
            &mut rng,
            &base_timing,
            budget,
        )?;
        let selection_time = t0.elapsed();
        drop(sel_span);
        if selection.gates.is_empty() {
            return Err(FlowError::NothingSelected);
        }
        budget.check()?;

        // Replacement and hybrid analyses. The activity report indexes by
        // arena position, which replacement preserves; LUT power ignores
        // activity anyway (it is content- and activity-independent).
        let (replaced, hybrid) = {
            let _s = sttlock_obs::span!("flow.replace", gates = selection.gates.len() as u64);
            let replaced = replace::apply_overlay(base.clone(), &selection);
            let hybrid = replaced.overlay.materialize();
            (replaced, hybrid)
        };
        let _analysis = sttlock_obs::span!("flow.analysis");
        let hybrid_timing = analyze(&hybrid, &self.lib);
        let hybrid_power = analyze_power(&hybrid, &self.lib, &activity);
        let hybrid_area = analyze_area(&hybrid, &self.lib);

        let overhead = OverheadReport::between(&base_power, base_area, &hybrid_power, hybrid_area);
        let security = security_estimate(&hybrid);

        let report = FlowReport {
            performance_degradation_pct: performance_degradation_pct(&base_timing, &hybrid_timing),
            power_overhead_pct: overhead.power_pct,
            leakage_overhead_pct: overhead.leakage_pct,
            area_overhead_pct: overhead.area_pct,
            stt_count: hybrid.lut_count(),
            selection_time,
            security,
        };
        Ok(FlowOutcome {
            hybrid,
            overlay: replaced.overlay,
            bitstream: replaced.bitstream,
            report,
            selection,
        })
    }
}

/// Tunables of the [`verify_and_repair`] loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// 64-lane random verification frames per round.
    pub random_batches: usize,
    /// Re-programming rounds after the initial verify — the retry
    /// budget. `0` means verify only, never repair.
    pub max_retries: usize,
    /// Base of the exponential backoff between re-programming rounds:
    /// round `r` sleeps `min(backoff_base * 2^r, max_backoff)`. The
    /// default is zero (no sleeping), which is what tests and campaigns
    /// want; a real programmer would set the device's write-recovery
    /// time.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff sleep. The doubling in
    /// [`backoff_base`](RepairConfig::backoff_base) saturates here, so
    /// a large retry budget can neither overflow the multiply nor sleep
    /// unboundedly. Defaults to 60 seconds.
    pub max_backoff: Duration,
    /// Close a clean random verify with a SAT equivalence proof. When a
    /// counterexample exists it is replayed as a targeted vector, so
    /// faults too subtle for random patterns still get localized.
    pub sat_proof: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            random_batches: 8,
            max_retries: 5,
            backoff_base: Duration::ZERO,
            max_backoff: Duration::from_secs(60),
            sat_proof: true,
        }
    }
}

/// Overall outcome of a [`verify_and_repair`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairVerdict {
    /// The device matches the golden model (SAT-proven when
    /// [`RepairConfig::sat_proof`] is set, else over the sampled
    /// vectors).
    Recovered,
    /// Mismatches remain after the retry budget, but re-programming
    /// reduced them — the part works partially.
    Degraded,
    /// Mismatches remain and re-programming did not help (or the fault
    /// sits outside the programmable bitstream).
    Unrecoverable,
}

impl RepairVerdict {
    /// Stable lowercase tag for records and tables.
    pub fn tag(&self) -> &'static str {
        match self {
            RepairVerdict::Recovered => "recovered",
            RepairVerdict::Degraded => "degraded",
            RepairVerdict::Unrecoverable => "unrecoverable",
        }
    }
}

impl fmt::Display for RepairVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Structured result of [`verify_and_repair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// What the loop concluded about the device.
    pub verdict: RepairVerdict,
    /// Individual test vectors evaluated (64 per bit-parallel frame).
    pub vectors_run: u64,
    /// Re-programming rounds that were actually executed (0 when the
    /// first verify was already clean).
    pub retries: u64,
    /// Individual LUT writes issued through the programming channel.
    pub reprogram_attempts: u64,
    /// Mismatching observation points of the first verify round.
    pub initial_mismatches: usize,
    /// Mismatching observation points still present at the end.
    pub residual_mismatches: usize,
    /// LUTs that were implicated at some point and verified clean at the
    /// end, by name.
    pub repaired_luts: Vec<String>,
    /// LUTs still implicated when the loop gave up, by name.
    pub failed_luts: Vec<String>,
}

impl RepairReport {
    /// Whether the device left the loop fully functional.
    pub fn is_recovered(&self) -> bool {
        self.verdict == RepairVerdict::Recovered
    }
}

/// Verifies a (possibly faulted) programmed hybrid against its golden
/// model and tries to repair it by re-programming implicated LUTs.
///
/// `golden` is the original pure-CMOS netlist the hybrid was derived
/// from — same arena, same wiring, so one [`CircuitView`] of it answers
/// cone queries for both designs. `device` is the fabricated part as a
/// copy-on-write overlay; `bitstream` is the intended LUT contents; all
/// writes go through `channel`, which models the STT programming
/// interface (pass a faulty channel to exercise the loop, or
/// [`PerfectChannel`](sttlock_fault::PerfectChannel) for an ideal one).
///
/// Each round runs bit-parallel differential simulation over fresh
/// random full-scan frames plus every accumulated targeted vector; a
/// clean round is (optionally) closed with a SAT equivalence proof whose
/// counterexample, if any, becomes a new targeted vector. Mismatching
/// observation points are localized to bitstream LUTs through fan-out
/// cone queries, and each implicated LUT is re-written through the
/// channel with exponential backoff between rounds (doubling from
/// [`RepairConfig::backoff_base`], saturating at
/// [`RepairConfig::max_backoff`] so the schedule can neither overflow
/// nor sleep unboundedly). The loop degrades gracefully: it returns a
/// [`RepairReport`] with a [`Degraded`](RepairVerdict::Degraded) or
/// [`Unrecoverable`](RepairVerdict::Unrecoverable) verdict instead of
/// retrying forever.
///
/// # Errors
///
/// Returns [`FlowError::Verification`] when the comparison itself is
/// impossible (interface mismatch, redacted LUT in the device) and
/// [`FlowError::Simulation`] when a netlist cannot be simulated.
pub fn verify_and_repair(
    golden: &Netlist,
    device: &mut HybridOverlay,
    bitstream: &[(NodeId, TruthTable)],
    channel: &mut dyn ProgrammingChannel,
    cfg: &RepairConfig,
    seed: u64,
) -> Result<RepairReport, FlowError> {
    verify_and_repair_budgeted(
        golden,
        device,
        bitstream,
        channel,
        cfg,
        seed,
        &Budget::unbounded(),
    )
}

/// [`verify_and_repair`] under a cooperative [`Budget`]: each round
/// checks the budget first, every differential frame charges a step,
/// and the exponential backoff sleeps through [`Budget::sleep`] so a
/// cancelled request wakes (and returns) within ~10 ms instead of
/// sleeping out the full clamped backoff. With an untripped budget the
/// report is identical to [`verify_and_repair`].
///
/// # Errors
///
/// As [`verify_and_repair`], plus [`FlowError::Budget`] when the budget
/// trips.
#[allow(clippy::too_many_arguments)]
pub fn verify_and_repair_budgeted(
    golden: &Netlist,
    device: &mut HybridOverlay,
    bitstream: &[(NodeId, TruthTable)],
    channel: &mut dyn ProgrammingChannel,
    cfg: &RepairConfig,
    seed: u64,
    budget: &Budget,
) -> Result<RepairReport, FlowError> {
    let base = Arc::clone(device.base());
    if golden.inputs().len() != base.inputs().len()
        || golden.outputs().len() != base.outputs().len()
    {
        return Err(FlowError::Verification(
            "golden model and device disagree on their I/O interface".to_owned(),
        ));
    }

    let view = CircuitView::new(golden);
    let order = view.topo_order_arc();
    let mut golden_sim = Simulator::with_order(golden, Arc::clone(&order))
        .map_err(|e| FlowError::Verification(format!("golden model is not simulatable: {e}")))?;
    let n_inputs = golden.inputs().len();
    let n_state = golden_sim.dff_ids().len();

    // Combinational fan-out cone of each bitstream LUT, computed lazily
    // and cached across rounds (wiring never changes).
    let mut cones: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();

    let intended: BTreeMap<NodeId, TruthTable> = bitstream.iter().copied().collect();
    let points = observation_points(golden);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1F_4EA1);
    let mut targeted: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
    let mut ever_suspected: BTreeSet<NodeId> = BTreeSet::new();
    let mut vectors_run = 0u64;
    let mut reprogram_attempts = 0u64;
    let mut initial_mismatches: Option<usize> = None;
    let mut last_suspects: Vec<NodeId> = Vec::new();
    let mut last_mismatches = 0usize;

    for round in 0..=cfg.max_retries {
        budget.check()?;
        let mut round_span = sttlock_obs::span!("repair.round", round = round as u64);
        let materialized = device.materialize();
        let mut device_sim = Simulator::with_order(&materialized, Arc::clone(&order))
            .map_err(|e| FlowError::Verification(format!("device is not simulatable: {e}")))?;

        // Differential simulation: fresh random frames plus every
        // targeted vector accumulated so far. `failing` collects the
        // observation-point nodes that disagreed in any lane.
        let mut failing: BTreeSet<NodeId> = BTreeSet::new();
        let mut frames: Vec<(Vec<u64>, Vec<u64>)> = targeted.clone();
        for _ in 0..cfg.random_batches {
            let ins: Vec<u64> = (0..n_inputs).map(|_| rng.gen()).collect();
            let st: Vec<u64> = (0..n_state).map(|_| rng.gen()).collect();
            frames.push((ins, st));
        }
        {
            let _verify = sttlock_obs::span!("repair.verify", frames = frames.len() as u64);
            for (ins, st) in &frames {
                budget.check()?;
                diff_frame(
                    &mut golden_sim,
                    &mut device_sim,
                    &points,
                    ins,
                    st,
                    &mut failing,
                )?;
                vectors_run += 64;
                budget.charge(64);
            }
        }

        if failing.is_empty() && cfg.sat_proof {
            // Random patterns saw nothing; ask the SAT engine for a
            // counterexample frame before declaring victory.
            let _sat = sttlock_obs::span!("repair.sat_proof");
            match check_equivalence(golden, &materialized) {
                Ok(EquivResult::Equivalent) => {}
                Ok(EquivResult::Different { inputs, state }) => {
                    let ins: Vec<u64> = inputs
                        .iter()
                        .map(|&b| if b { u64::MAX } else { 0 })
                        .collect();
                    let st: Vec<u64> = state
                        .iter()
                        .map(|&b| if b { u64::MAX } else { 0 })
                        .collect();
                    diff_frame(
                        &mut golden_sim,
                        &mut device_sim,
                        &points,
                        &ins,
                        &st,
                        &mut failing,
                    )?;
                    vectors_run += 64;
                    budget.charge(64);
                    if failing.is_empty() {
                        return Err(FlowError::Verification(
                            "equivalence witness does not distinguish the designs".to_owned(),
                        ));
                    }
                    targeted.push((ins, st));
                }
                Err(e) => return Err(FlowError::Verification(e.to_string())),
            }
        }

        let mismatches = failing.len();
        round_span.record(
            "mismatches",
            sttlock_obs::FieldValue::from(mismatches as u64),
        );
        if initial_mismatches.is_none() {
            initial_mismatches = Some(mismatches);
        }
        last_mismatches = mismatches;

        if failing.is_empty() {
            return Ok(RepairReport {
                verdict: RepairVerdict::Recovered,
                vectors_run,
                retries: round as u64,
                reprogram_attempts,
                initial_mismatches: initial_mismatches.unwrap_or(0),
                residual_mismatches: 0,
                repaired_luts: names_of(golden, ever_suspected.iter().copied()),
                failed_luts: Vec::new(),
            });
        }

        // Localization: a bitstream LUT is suspect when any failing
        // observation point lies in its combinational fan-out cone.
        let suspects: Vec<NodeId> = bitstream
            .iter()
            .map(|&(id, _)| id)
            .filter(|&id| {
                let cone = cones
                    .entry(id)
                    .or_insert_with(|| view.fanout_cone(&[id], false));
                failing.iter().any(|f| cone.binary_search(f).is_ok())
            })
            .collect();
        ever_suspected.extend(suspects.iter().copied());
        round_span.record(
            "suspects",
            sttlock_obs::FieldValue::from(suspects.len() as u64),
        );
        last_suspects = suspects.clone();

        if suspects.is_empty() || round == cfg.max_retries {
            break;
        }

        // Re-program every suspect through the channel, with clamped
        // exponential backoff before each retry round.
        let backoff = backoff_for_round(cfg, round as u32);
        if !backoff.is_zero() {
            sttlock_obs::counter("repair.backoff_sleeps", 1);
            // Cancel-aware: a tripped budget wakes the sleep early and
            // the loop returns instead of re-programming.
            if !budget.sleep(backoff) {
                return Err(FlowError::Budget(
                    budget
                        .check()
                        .expect_err("sleep only aborts on a tripped budget"),
                ));
            }
        }
        for &id in &suspects {
            let Some(&table) = intended.get(&id) else {
                continue;
            };
            let stored = channel.write(id, table);
            device.set_lut_config(id, stored);
            reprogram_attempts += 1;
            sttlock_obs::counter("repair.reprogram_writes", 1);
        }
    }

    let initial = initial_mismatches.unwrap_or(0);
    let verdict = if last_mismatches < initial && !last_suspects.is_empty() {
        RepairVerdict::Degraded
    } else {
        RepairVerdict::Unrecoverable
    };
    let failed: BTreeSet<NodeId> = last_suspects.iter().copied().collect();
    Ok(RepairReport {
        verdict,
        vectors_run,
        retries: cfg.max_retries as u64,
        reprogram_attempts,
        initial_mismatches: initial,
        residual_mismatches: last_mismatches,
        repaired_luts: names_of(golden, ever_suspected.difference(&failed).copied()),
        failed_luts: names_of(golden, failed.iter().copied()),
    })
}

/// The backoff slept before retry round `round`: `backoff_base * 2^round`
/// computed with `checked_mul` and clamped to `cfg.max_backoff`, so no
/// (base, round) combination can overflow `Duration`'s panicking `Mul`.
fn backoff_for_round(cfg: &RepairConfig, round: u32) -> Duration {
    cfg.backoff_base
        .checked_mul(2u32.saturating_pow(round))
        .map_or(cfg.max_backoff, |d| d.min(cfg.max_backoff))
}

/// Evaluates one full-scan frame on both designs and records every
/// observation-point node whose 64-lane words disagree.
fn diff_frame(
    golden: &mut Simulator<'_>,
    device: &mut Simulator<'_>,
    points: &[NodeId],
    inputs: &[u64],
    state: &[u64],
    failing: &mut BTreeSet<NodeId>,
) -> Result<(), FlowError> {
    golden.eval_frame(inputs, state)?;
    device.eval_frame(inputs, state)?;
    let a = golden.observation();
    let b = device.observation();
    if a.len() != b.len() || a.len() != points.len() {
        return Err(FlowError::Verification(
            "observation vectors differ in length".to_owned(),
        ));
    }
    for (i, &point) in points.iter().enumerate() {
        if a[i] != b[i] {
            failing.insert(point);
        }
    }
    Ok(())
}

/// The node observed at each index of [`Simulator::observation`]:
/// primary-output drivers, then flip-flop D drivers (arena order).
fn observation_points(netlist: &Netlist) -> Vec<NodeId> {
    let mut points: Vec<NodeId> = netlist.outputs().to_vec();
    for (_, node) in netlist.iter() {
        if let sttlock_netlist::Node::Dff { d } = node {
            points.push(*d);
        }
    }
    points
}

/// Names for a set of node ids, sorted by id.
fn names_of(netlist: &Netlist, ids: impl Iterator<Item = NodeId>) -> Vec<String> {
    ids.map(|id| netlist.node_name(id).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sttlock_benchgen::Profile;
    use sttlock_sim::Simulator;

    fn circuit() -> Netlist {
        Profile::custom("flow", 250, 10, 8, 6).generate(&mut StdRng::seed_from_u64(21))
    }

    #[test]
    fn flow_produces_functional_hybrid() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::Independent, 1)
            .expect("flow succeeds");
        assert_eq!(out.report.stt_count, 5);
        // Functional equivalence of the programmed hybrid.
        let mut sa = Simulator::new(&n).unwrap();
        let mut sb = Simulator::new(&out.hybrid).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            let pat: Vec<u64> = (0..n.inputs().len()).map(|_| rng.gen()).collect();
            assert_eq!(sa.step(&pat).unwrap(), sb.step(&pat).unwrap());
        }
        // The foundry view hides every configuration.
        let foundry = out.foundry_view();
        assert_eq!(foundry.lut_count(), out.report.stt_count);
        assert!(foundry
            .node_ids()
            .all(|id| foundry.lut_config(id).is_none()));
    }

    #[test]
    fn all_algorithms_run_and_order_security() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let indep = flow.run(&n, SelectionAlgorithm::Independent, 3).unwrap();
        let dep = flow.run(&n, SelectionAlgorithm::Dependent, 3).unwrap();
        let para = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 3)
            .unwrap();
        // Figure 3's ordering: dependent/parametric dwarf independent.
        assert!(dep.report.security.n_dep.log10() > indep.report.security.n_indep.log10());
        assert!(para.report.security.n_bf.log10() > indep.report.security.n_indep.log10());
    }

    #[test]
    fn parametric_timing_is_no_worse_than_dependent() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let dep = flow.run(&n, SelectionAlgorithm::Dependent, 5).unwrap();
        let para = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 5)
            .unwrap();
        assert!(
            para.report.performance_degradation_pct
                <= dep.report.performance_degradation_pct + 1e-9
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let a = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 7)
            .unwrap();
        let b = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 7)
            .unwrap();
        assert_eq!(a.hybrid, b.hybrid);
        assert_eq!(a.bitstream, b.bitstream);
    }

    #[test]
    fn unfaulted_device_verifies_clean_without_retries() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 9)
            .unwrap();
        let mut device = out.overlay.clone();
        let mut channel = sttlock_fault::PerfectChannel;
        let report = verify_and_repair(
            &n,
            &mut device,
            &out.bitstream,
            &mut channel,
            &RepairConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(report.verdict, RepairVerdict::Recovered);
        assert_eq!(report.retries, 0);
        assert_eq!(report.reprogram_attempts, 0);
        assert_eq!(report.initial_mismatches, 0);
        assert_eq!(report.residual_mismatches, 0);
        assert!(report.vectors_run > 0);
        assert!(report.repaired_luts.is_empty());
        assert!(report.failed_luts.is_empty());
    }

    #[test]
    fn single_row_fault_is_repaired_through_a_perfect_channel() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 9)
            .unwrap();
        let (victim, table) = out.bitstream[0];
        let mut device = out.overlay.clone();
        // Flip one stored row of the victim LUT.
        device.set_lut_config(
            victim,
            sttlock_netlist::TruthTable::new(table.inputs(), table.bits() ^ 1),
        );
        let mut channel = sttlock_fault::PerfectChannel;
        let report = verify_and_repair(
            &n,
            &mut device,
            &out.bitstream,
            &mut channel,
            &RepairConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(report.verdict, RepairVerdict::Recovered, "{report:?}");
        assert!(report.retries >= 1);
        assert!(report.reprogram_attempts >= 1);
        assert!(report.initial_mismatches > 0);
        assert_eq!(report.residual_mismatches, 0);
        assert!(report
            .repaired_luts
            .contains(&n.node_name(victim).to_owned()));
        // The repaired device really stores the intended table.
        assert_eq!(device.lut_config(victim), Some(table));
    }

    #[test]
    fn backoff_schedule_clamps_instead_of_overflowing() {
        // Seed code computed `backoff_base * 2^round` through Duration's
        // panicking `Mul`; with this base, round 1 already overflows.
        let cfg = RepairConfig {
            backoff_base: Duration::MAX / 2,
            ..RepairConfig::default()
        };
        for round in 0..64 {
            assert!(backoff_for_round(&cfg, round) <= cfg.max_backoff);
        }
        // The un-clamped region of the schedule still doubles.
        let cfg = RepairConfig {
            backoff_base: Duration::from_millis(3),
            ..RepairConfig::default()
        };
        assert_eq!(backoff_for_round(&cfg, 0), Duration::from_millis(3));
        assert_eq!(backoff_for_round(&cfg, 2), Duration::from_millis(12));
        assert_eq!(backoff_for_round(&cfg, u32::MAX), cfg.max_backoff);
    }

    #[test]
    fn huge_backoff_base_cannot_stall_or_panic_the_repair_loop() {
        // A fault that needs at least one retry round, driven with the
        // pathological base from the overflow report. On seed code this
        // test slept `Duration::MAX / 2` before the first re-program (and
        // would have panicked in the round-1 multiply); with the clamp it
        // completes in milliseconds.
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 9)
            .unwrap();
        let (victim, table) = out.bitstream[0];
        let mut device = out.overlay.clone();
        device.set_lut_config(
            victim,
            sttlock_netlist::TruthTable::new(table.inputs(), table.bits() ^ 1),
        );
        let cfg = RepairConfig {
            backoff_base: Duration::MAX / 2,
            max_backoff: Duration::from_millis(1),
            ..RepairConfig::default()
        };
        let mut channel = sttlock_fault::PerfectChannel;
        let report =
            verify_and_repair(&n, &mut device, &out.bitstream, &mut channel, &cfg, 1).unwrap();
        assert_eq!(report.verdict, RepairVerdict::Recovered, "{report:?}");
        assert!(report.retries >= 1);
    }

    #[test]
    fn fault_outside_the_bitstream_is_unrecoverable_not_a_panic() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 9)
            .unwrap();
        let mut device = out.overlay.clone();
        // Weld a plain CMOS gate's output to a constant — nothing in the
        // bitstream can fix that.
        let victim = out
            .hybrid
            .node_ids()
            .find(|&id| {
                matches!(out.hybrid.node(id), sttlock_netlist::Node::Gate { fanin, .. }
                    if fanin.len() <= sttlock_netlist::MAX_LUT_INPUTS)
                    && !view_feeds_nothing(&n, id)
            })
            .expect("some gate drives an observation point");
        // Invert it outright: wrong on every input row, guaranteed to be
        // observable and unfixable by bitstream writes.
        let wrong = device.replace_gate_with_lut(victim).unwrap().complement();
        device.set_lut_config(victim, wrong);
        let mut channel = sttlock_fault::PerfectChannel;
        let report = verify_and_repair(
            &n,
            &mut device,
            &out.bitstream,
            &mut channel,
            &RepairConfig::default(),
            1,
        )
        .unwrap();
        assert_ne!(report.verdict, RepairVerdict::Recovered, "{report:?}");
        assert!(report.residual_mismatches > 0);
    }

    /// Whether `id`'s fan-out cone reaches no observation point (a
    /// stuck fault there would be silent and the test vacuous).
    fn view_feeds_nothing(n: &Netlist, id: sttlock_netlist::NodeId) -> bool {
        let view = CircuitView::new(n);
        let cone = view.fanout_cone(&[id], false);
        let mut points: Vec<sttlock_netlist::NodeId> = n.outputs().to_vec();
        for (_, node) in n.iter() {
            if let sttlock_netlist::Node::Dff { d } = node {
                points.push(*d);
            }
        }
        !points.iter().any(|p| cone.binary_search(p).is_ok())
    }

    #[test]
    fn budgeted_flow_matches_unbudgeted_and_honours_cancel() {
        let n = Arc::new(circuit());
        let flow = Flow::new(Library::predictive_90nm());
        let plain = flow
            .run_shared(&n, SelectionAlgorithm::ParametricAware, 7)
            .unwrap();
        let budget = Budget::unbounded();
        let budgeted = flow
            .run_budgeted(&n, SelectionAlgorithm::ParametricAware, 7, &budget)
            .unwrap();
        assert_eq!(plain.hybrid, budgeted.hybrid);
        assert_eq!(plain.bitstream, budgeted.bitstream);
        assert!(budget.steps_spent() > 0, "selection queries must charge");

        let cancelled = Budget::unbounded();
        cancelled.cancel();
        let err = flow.run_budgeted(&n, SelectionAlgorithm::ParametricAware, 7, &cancelled);
        assert_eq!(err, Err(FlowError::Budget(BudgetError::Cancelled)));
    }

    #[test]
    fn budgeted_repair_stops_on_cancel_and_sleeps_cancel_aware() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        let out = flow
            .run(&n, SelectionAlgorithm::ParametricAware, 9)
            .unwrap();
        let mut device = out.overlay.clone();
        let mut channel = sttlock_fault::PerfectChannel;
        let cancelled = Budget::unbounded();
        cancelled.cancel();
        let err = verify_and_repair_budgeted(
            &n,
            &mut device,
            &out.bitstream,
            &mut channel,
            &RepairConfig::default(),
            1,
            &cancelled,
        );
        assert_eq!(err, Err(FlowError::Budget(BudgetError::Cancelled)));

        // A faulted device with a long backoff: cancellation mid-sleep
        // must abort the round promptly instead of sleeping it out.
        let (victim, table) = out.bitstream[0];
        let mut device = out.overlay.clone();
        device.set_lut_config(
            victim,
            sttlock_netlist::TruthTable::new(table.inputs(), table.bits() ^ 1),
        );
        let cfg = RepairConfig {
            backoff_base: Duration::from_secs(3600),
            max_backoff: Duration::from_secs(3600),
            ..RepairConfig::default()
        };
        let budget = Budget::unbounded();
        let token = budget.token();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let t0 = Instant::now();
        let err = verify_and_repair_budgeted(
            &n,
            &mut device,
            &out.bitstream,
            &mut channel,
            &cfg,
            1,
            &budget,
        );
        waker.join().unwrap();
        assert_eq!(err, Err(FlowError::Budget(BudgetError::Cancelled)));
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "cancel must interrupt the backoff sleep"
        );
    }

    #[test]
    fn overheads_are_positive_for_power_and_area() {
        let n = circuit();
        let flow = Flow::new(Library::predictive_90nm());
        for alg in SelectionAlgorithm::ALL {
            let out = flow.run(&n, alg, 11).unwrap();
            assert!(out.report.power_overhead_pct > 0.0, "{alg}");
            assert!(out.report.area_overhead_pct > 0.0, "{alg}");
        }
    }
}
