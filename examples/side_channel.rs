//! The side-channel claim of Section II, measured: STT-LUT power is
//! "almost insensitive to its input changes", so moving logic into LUTs
//! flattens the data-dependent component of the power trace.
//!
//! This example traces per-cycle energy of a CMOS design and of
//! progressively more LUT-converted hybrids under the same stimulus and
//! reports the coefficient of variation — the signal a power
//! side-channel attacker correlates against.
//!
//! ```text
//! cargo run --example side_channel
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock::benchgen::Profile;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::power::trace::{data_dependent_nodes, random_trace};
use sttlock::techlib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = Profile::custom("sc_target", 200, 8, 10, 8);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(5));
    let lib = Library::predictive_90nm();
    const CYCLES: usize = 2000;

    println!("power side-channel profile over {CYCLES} random cycles");
    println!();
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "design", "#LUT", "mean fJ/cyc", "sigma fJ", "sigma/mean"
    );
    println!("{}", "-".repeat(68));

    // Baseline CMOS.
    let mut rng = StdRng::seed_from_u64(99);
    let base = random_trace(&netlist, &lib, CYCLES, &mut rng)?;
    println!(
        "{:<22} {:>8} {:>12.1} {:>12.2} {:>10.4}",
        "pure CMOS",
        0,
        base.mean(),
        base.variance().sqrt(),
        base.relative_spread()
    );

    // Hybrids with growing LUT budgets.
    let mut flow = Flow::new(lib.clone());
    for budget in [5usize, 20, 60] {
        flow.selection.independent_gates = budget;
        let out = flow.run(&netlist, SelectionAlgorithm::Independent, 42)?;
        let mut rng = StdRng::seed_from_u64(99);
        let t = random_trace(&out.hybrid, &lib, CYCLES, &mut rng)?;
        println!(
            "{:<22} {:>8} {:>12.1} {:>12.2} {:>10.4}",
            format!("hybrid ({budget} LUTs)"),
            out.report.stt_count,
            t.mean(),
            t.variance().sqrt(),
            t.relative_spread()
        );
    }

    // The limit case: every gate becomes a LUT → zero data dependence.
    let mut all_lut = netlist.clone();
    let gates: Vec<_> = data_dependent_nodes(&netlist);
    for id in gates {
        if all_lut.node(id).fanin().len() <= 6 {
            all_lut.replace_gate_with_lut(id)?;
        }
    }
    let mut rng = StdRng::seed_from_u64(99);
    let t = random_trace(&all_lut, &lib, CYCLES, &mut rng)?;
    println!(
        "{:<22} {:>8} {:>12.1} {:>12.2} {:>10.4}",
        "all-LUT (limit)",
        all_lut.lut_count(),
        t.mean(),
        t.variance().sqrt(),
        t.relative_spread()
    );

    println!();
    println!("sigma/mean is the attacker's correlation signal: every gate moved into an");
    println!("STT-LUT removes its data-dependent switching energy from the trace, and the");
    println!("all-LUT limit is perfectly flat (zero variance), as the paper argues.");
    Ok(())
}
