//! The full design-house story (Figure 2 of the paper), end to end:
//!
//! 1. synthesize (here: generate) a gate-level netlist,
//! 2. compare all three selection algorithms on it,
//! 3. harden the chosen hybrid against ML attacks (decoy inputs +
//!    complex-function absorption, Section IV-A.3),
//! 4. redact for the foundry, export Verilog, and later program the
//!    fabricated part from the retained bitstream — verifying the
//!    programmed part matches the original design cycle for cycle.
//!
//! ```text
//! cargo run --example secure_flow
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sttlock::benchgen::profiles;
use sttlock::core::harden::{harden, HardenConfig};
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::netlist::verilog;
use sttlock::sim::Simulator;
use sttlock::techlib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = profiles::by_name("s953").expect("known benchmark");
    let netlist = profile.generate(&mut StdRng::seed_from_u64(7));
    println!("design under protection: {netlist}");
    println!();

    // --- compare the three selection algorithms ------------------------
    let flow = Flow::new(Library::predictive_90nm());
    println!(
        "{:<18} {:>6} {:>8} {:>8} {:>8} {:>12}",
        "algorithm", "#LUT", "perf%", "power%", "area%", "security"
    );
    let mut chosen = None;
    for alg in SelectionAlgorithm::ALL {
        let out = flow.run(&netlist, alg, 42)?;
        let security = match alg {
            SelectionAlgorithm::Independent => out.report.security.n_indep,
            SelectionAlgorithm::Dependent => out.report.security.n_dep,
            SelectionAlgorithm::ParametricAware => out.report.security.n_bf,
        };
        println!(
            "{:<18} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>12}",
            alg.to_string(),
            out.report.stt_count,
            out.report.performance_degradation_pct,
            out.report.power_overhead_pct,
            out.report.area_overhead_pct,
            security
        );
        if alg == SelectionAlgorithm::ParametricAware {
            chosen = Some(out);
        }
    }
    let mut outcome = chosen.expect("parametric run succeeded");
    println!();

    // --- harden against ML attacks -------------------------------------
    let mut rng = StdRng::seed_from_u64(9);
    let report = harden(&mut outcome.hybrid, &HardenConfig::default(), &mut rng)?;
    println!(
        "hardening: {} decoy inputs, {} gates absorbed into LUTs",
        report.decoys_added, report.gates_absorbed
    );
    // Hardening rewrote LUT configs; refresh the secret bitstream.
    let (foundry, bitstream) = outcome.hybrid.redact();

    // --- manufacture + program -----------------------------------------
    let rtl = verilog::write(&foundry);
    println!(
        "foundry receives {} lines of structural Verilog, zero config bits",
        rtl.lines().count()
    );
    let mut fabricated = verilog::parse(&rtl)?;
    fabricated.program(&bitstream);
    println!(
        "design house programs {} LUT configurations post-fab",
        bitstream.len()
    );

    // --- verify the programmed part ------------------------------------
    let mut golden = Simulator::new(&netlist)?;
    let mut part = Simulator::new(&fabricated)?;
    let mut rng = StdRng::seed_from_u64(11);
    let cycles = 512;
    for _ in 0..cycles {
        let pattern: Vec<u64> = (0..netlist.inputs().len()).map(|_| rng.gen()).collect();
        assert_eq!(
            golden.step(&pattern)?,
            part.step(&pattern)?,
            "programmed part diverged from the golden design"
        );
    }
    println!("verification: {cycles} cycles x 64 lanes, programmed part matches golden design");
    Ok(())
}
