//! Attack resilience, measured: run the executable attacks of
//! `sttlock-attack` against hybrids produced by each selection
//! algorithm and compare with the paper's analytic estimates.
//!
//! * The **sensitization (testing) attack** fully recovers independent
//!   missing gates and stalls on dependent ones — Section IV-A.1/A.2.
//! * The **oracle-guided SAT attack** breaks everything *if* scan access
//!   is open (full-scan model), with effort growing in the key width —
//!   which is why the paper locks the scan chain in fielded parts.
//!
//! ```text
//! cargo run --example attack_resilience
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sttlock::attack::sat_attack::{self, SatAttackConfig};
use sttlock::attack::sensitization::{self, SensitizationConfig};
use sttlock::benchgen::Profile;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::techlib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small circuit keeps the SAT attack demo fast; the scaling bench
    // (`cargo bench -p sttlock-bench --bench sat_attack`) covers growth.
    let profile = Profile::custom("target", 180, 8, 10, 8);
    let netlist = profile.generate(&mut StdRng::seed_from_u64(3));
    let flow = Flow::new(Library::predictive_90nm());

    println!("attack target: {netlist}");
    println!();
    println!(
        "{:<18} {:>6} | {:>10} {:>12} | {:>8} {:>10} | {:>12}",
        "selection", "#LUT", "sens.break", "rows solved", "SAT dips", "conflicts", "est. clocks"
    );
    println!("{}", "-".repeat(92));

    for alg in SelectionAlgorithm::ALL {
        let out = flow.run(&netlist, alg, 42)?;
        let redacted = out.foundry_view();

        // Testing attack (no scan needed beyond the frame model).
        let mut rng = StdRng::seed_from_u64(17);
        let sens = sensitization::run(
            &redacted,
            &out.hybrid,
            &SensitizationConfig {
                patterns_per_gate: 256,
                sat_justification: true,
                ..SensitizationConfig::default()
            },
            &mut rng,
        )?;

        // SAT attack under the full-scan assumption.
        let sat = sat_attack::run(&redacted, &out.hybrid, &SatAttackConfig::default())?;

        let estimate = match alg {
            SelectionAlgorithm::Independent => out.report.security.n_indep,
            SelectionAlgorithm::Dependent => out.report.security.n_dep,
            SelectionAlgorithm::ParametricAware => out.report.security.n_bf,
        };
        println!(
            "{:<18} {:>6} | {:>10} {:>11.0}% | {:>8} {:>10} | {:>12}",
            alg.to_string(),
            out.report.stt_count,
            if sens.is_full_break() { "YES" } else { "no" },
            sens.resolution_ratio() * 100.0,
            sat.dips,
            sat.solver_stats.conflicts,
            estimate
        );

        if alg == SelectionAlgorithm::Independent {
            assert!(
                sens.resolution_ratio() > 0.5,
                "independent selection should largely fall to the testing attack, got {:.0}%",
                sens.resolution_ratio() * 100.0
            );
        }
        if let Some(bits) = &sat.bitstream {
            let mut rng = StdRng::seed_from_u64(23);
            let mismatches =
                sat_attack::verify_bitstream(&redacted, &out.hybrid, bits, 32, &mut rng)?;
            assert_eq!(
                mismatches, 0,
                "SAT-recovered keys must be functionally exact"
            );
        }
    }

    println!();
    println!("Reading: the testing attack resolves independent LUTs but stalls once missing");
    println!("gates feed missing gates; the SAT attack wins only because this model grants");
    println!("full scan access — the deployed defense locks the scan chain, leaving the");
    println!("attacker the estimated clock counts in the last column (Equations 1-3).");
    Ok(())
}
