//! Quickstart: lock a benchmark circuit with the parametric-aware
//! selection and print the numbers a designer cares about.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use sttlock::benchgen::profiles;
use sttlock::core::{Flow, SelectionAlgorithm};
use sttlock::netlist::bench_format;
use sttlock::techlib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain a synthesized gate-level netlist. Here: the synthetic
    //    s1196-profile benchmark; swap in `bench_format::parse` on a real
    //    ISCAS '89 file if you have one.
    let profile = profiles::by_name("s1196").expect("known benchmark");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let netlist = profile.generate(&mut rng);
    println!("input design : {netlist}");

    // 2. Run the security-driven flow (Figure 2 of the paper).
    let flow = Flow::new(Library::predictive_90nm());
    let outcome = flow.run(&netlist, SelectionAlgorithm::ParametricAware, 42)?;
    println!("selection    : {}", outcome.selection.algorithm);
    println!("report       : {}", outcome.report);
    println!(
        "security     : N_indep {}  N_dep {}  N_bf {}",
        outcome.report.security.n_indep,
        outcome.report.security.n_dep,
        outcome.report.security.n_bf
    );
    println!(
        "attack time  : {:.1e} years at 1e9 patterns/s",
        outcome.report.security.n_bf.years_at(1e9)
    );

    // 3. Ship the foundry view; keep the bitstream.
    let foundry = outcome.foundry_view();
    println!(
        "foundry view : {} LUTs redacted, {} config bits withheld",
        foundry.lut_count(),
        outcome
            .bitstream
            .iter()
            .map(|(_, t)| t.rows())
            .sum::<usize>()
    );

    // 4. The hybrid netlist exports to `.bench` (and structural Verilog)
    //    for hand-off to physical design.
    let bench_text = bench_format::write(&foundry);
    println!(
        "export       : {} lines of .bench written for the foundry",
        bench_text.lines().count()
    );
    Ok(())
}
